"""Synthetic token sequences standing in for XNLI and other sequence data.

The BiRNN / StackRNN / NestedRNN workloads only depend on sequence lengths
and embedding dimensionality; token identities are irrelevant because the
model weights are random.  Lengths follow an XNLI-like distribution
(mean ~21 tokens, clipped to [5, 64]).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def xnli_like_lengths(batch_size: int, rng: np.random.Generator) -> List[int]:
    """Sentence lengths following an XNLI-like distribution."""
    lengths = rng.gamma(shape=5.0, scale=4.2, size=batch_size) + 5
    return [int(np.clip(round(x), 5, 64)) for x in lengths]


def random_sequences(
    batch_size: int,
    embed_dim: int,
    seed: int = 0,
    lengths: Optional[Sequence[int]] = None,
) -> List[List[np.ndarray]]:
    """A mini-batch of token-embedding sequences (one list of ``(1, embed)``
    arrays per instance)."""
    rng = np.random.default_rng(seed)
    if lengths is None:
        lengths = xnli_like_lengths(batch_size, rng)
    return [
        [rng.standard_normal((1, embed_dim)).astype(np.float32) * 0.1 for _ in range(n)]
        for n in lengths
    ]


def random_matrix_sequence(
    batch_size: int,
    rows: int,
    cols: int,
    seed: int = 0,
) -> List[np.ndarray]:
    """A mini-batch of dense matrices (e.g. Berxit's token-embedding blocks
    of shape ``(seq_len, hidden)``)."""
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal((rows, cols)).astype(np.float32) * 0.05
        for _ in range(batch_size)
    ]


def coin_run_lists(
    batch_size: int,
    min_iters: int,
    max_iters: int,
    seed: int = 0,
) -> List[List[int]]:
    """Per-instance iteration budgets in ``[min_iters, max_iters]`` encoded as
    run-length lists.  Used by NestedRNN to *emulate* tensor-dependent control
    flow with pre-determined pseudo-randomness, exactly as the paper does for
    its evaluation (§7.3)."""
    rng = np.random.default_rng(seed)
    return [
        [1] * int(rng.integers(min_iters, max_iters + 1)) + [0]
        for _ in range(batch_size)
    ]
