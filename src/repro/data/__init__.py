"""Synthetic datasets standing in for the paper's SST / XNLI workloads."""

from .sequences import (
    coin_run_lists,
    random_matrix_sequence,
    random_sequences,
    xnli_like_lengths,
)
from .trees import TreeNode, random_tree, random_treebank, sst_like_lengths

__all__ = [
    "TreeNode",
    "random_tree",
    "random_treebank",
    "sst_like_lengths",
    "random_sequences",
    "random_matrix_sequence",
    "coin_run_lists",
    "xnli_like_lengths",
]
