"""Synthetic parse trees standing in for the Stanford Sentiment Treebank.

Only the structural statistics of SST matter for auto-batching behaviour
(how many leaves per sentence, how balanced the binary parses are); token
identities do not, because embeddings are random in any case (the paper
itself evaluates with random weights).  The generator produces random binary
trees whose leaf counts follow an SST-like distribution (mean ~19 tokens,
clipped to [4, 52]) and whose shapes interpolate between balanced and
left-branching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass
class TreeNode:
    """A binary parse-tree node; leaves carry an embedding vector."""

    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    embedding: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def num_leaves(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.num_leaves() + self.right.num_leaves()

    def num_nodes(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + self.left.num_nodes() + self.right.num_nodes()

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(self.left.depth(), self.right.depth())


def random_tree(
    num_leaves: int,
    embed_dim: int,
    rng: np.random.Generator,
    balance: float = 0.5,
) -> TreeNode:
    """Build a random binary tree with ``num_leaves`` leaves.

    ``balance`` in [0, 1] controls the split point distribution: 1.0 gives
    perfectly balanced splits, 0.0 gives left-branching chains.
    """
    if num_leaves < 1:
        raise ValueError("num_leaves must be >= 1")
    if num_leaves == 1:
        emb = rng.standard_normal((1, embed_dim)).astype(np.float32) * 0.1
        return TreeNode(embedding=emb)
    if balance >= 1.0:
        split = num_leaves // 2
    elif balance <= 0.0:
        split = num_leaves - 1
    else:
        mid = num_leaves / 2.0
        split = int(round(rng.normal(mid * (balance) + (num_leaves - 1) * (1 - balance), mid * 0.3)))
        split = int(np.clip(split, 1, num_leaves - 1))
    left = random_tree(split, embed_dim, rng, balance)
    right = random_tree(num_leaves - split, embed_dim, rng, balance)
    return TreeNode(left=left, right=right)


def sst_like_lengths(batch_size: int, rng: np.random.Generator) -> List[int]:
    """Sentence lengths following an SST-like distribution."""
    lengths = rng.gamma(shape=4.0, scale=4.8, size=batch_size) + 4
    return [int(np.clip(round(x), 4, 52)) for x in lengths]


def random_treebank(
    batch_size: int,
    embed_dim: int,
    seed: int = 0,
    balance: float = 0.6,
    lengths: Optional[Sequence[int]] = None,
) -> List[TreeNode]:
    """A mini-batch of random parse trees (the TreeLSTM / MV-RNN workload)."""
    rng = np.random.default_rng(seed)
    if lengths is None:
        lengths = sst_like_lengths(batch_size, rng)
    return [random_tree(n, embed_dim, rng, balance) for n in lengths]
