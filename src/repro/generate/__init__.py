"""Autoregressive generation: per-step re-batching over the serving stack.

Generation turns ACROBAT's cross-request batching into a loop: every live
sequence re-enters the round former once per token, so decode steps of many
sequences — and fresh prefills — batch into the same rounds through the
normal scheduler → placement → memory-planner → specializer path.

* :class:`GenerationSession` — the step driver: a deterministic simulated
  event loop (:meth:`~GenerationSession.generate`, the decode twin of
  ``ServeLoop.run_trace``) or a wall-clock pump behind a running
  :class:`~repro.serve.server.Server` (:meth:`~GenerationSession.submit`);
* :class:`GenerationRequest` / :class:`GenerationHandle` — prompt,
  stopping rules (EOS / ``max_new_tokens``), streaming (``stream()`` /
  ``on_token``), cancellation and deadlines at round-boundary granularity;
* :class:`GenerationMetrics` — per-step SLO aggregates (TTFS, inter-step
  p99), surfaced through ``Endpoint.summary()``;
* :func:`reference_generate` — the eager unbatched twin every batched
  trajectory must match bitwise.

The decoder-step models live in :mod:`repro.models.declm` (tanh-RNN and
GRU cells); ``experiments/generation.py`` benchmarks per-request vs
continuously batched decoding over them.
"""

from .request import (
    GenerationCancelled,
    GenerationExpired,
    GenerationHandle,
    GenerationMetrics,
    GenerationRequest,
    GenerationStats,
)
from .session import GenerationSession, reference_generate

__all__ = [
    "GenerationCancelled",
    "GenerationExpired",
    "GenerationHandle",
    "GenerationMetrics",
    "GenerationRequest",
    "GenerationSession",
    "GenerationStats",
    "reference_generate",
]
