"""Autoregressive generation over a cross-request batching session.

ACROBAT batches *within* one round of independent requests; autoregressive
decoding adds a loop around it: each live sequence re-enters the round
former once per generated token.  :class:`GenerationSession` is that loop.
Each decode step is one ordinary
:meth:`~repro.serve.session.InferenceSession.submit` — a single cell
application ``(state, token) -> (state', logits)`` recorded into the shared
lazy DFG — so decode steps of many live sequences *and fresh prefills*
batch into the same rounds through the normal scheduler → placement →
memory-planner → specializer path.  Nothing below the session knows
generation exists.

Two drivers share the per-step logic:

* **simulated** (:meth:`GenerationSession.generate`): a deterministic
  event loop on the session's :class:`~repro.serve.clock.SimulatedClock`
  and a :class:`~repro.serve.loop.DeviceTimeline` — the decode twin of
  ``ServeLoop.run_trace``.  Rounds form at step boundaries
  (iteration-level scheduling: a round launches when the previous round's
  results have been consumed and its successor steps resubmitted), the
  flush policy decides composition exactly as for single-shot traffic, and
  replaying the same request list is bit-for-bit identical.
* **wall-clock** (:meth:`GenerationSession.submit` behind a running
  :class:`~repro.serve.server.Server`): a pump thread consumes completed
  step handles, selects tokens host-side and resubmits through
  ``Server.submit``, so generation streams through the live serve loop.

Per-sequence recurrent state stays **arena-resident** across steps: a
step's output state is a zero-copy view into a device-born output arena
(arena ids are never recycled, so later rounds cannot overwrite it), and
the driver marks it resident
(:meth:`~repro.runtime.device.DeviceSimulator.note_resident`) before
feeding it back, so the next step's planner sees the bytes already on the
device and charges no host→device transfer.  Embedding rows are pre-sliced
once per vocabulary entry, giving them stable identities in the residency
cache — a device-resident embedding table.

Token selection (greedy argmax) and EOS/max-token stopping are host-side
and data-dependent, which is exactly why the cell itself carries no
tensor-dependent control flow: the sequential structure lives in this
driver, outside the DFG, keeping decode rounds on the non-fiber path where
plan caching, speculation (``prepare=True``) and kernel specialization all
apply.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..serve.clock import SimulatedClock
from ..serve.loop import DeviceTimeline, replay_state
from ..serve.request import RequestCancelled, RequestExpired, RequestHandle
from ..utils import flatten_arrays
from .request import (
    GenerationCancelled,
    GenerationExpired,
    GenerationHandle,
    GenerationMetrics,
    GenerationRequest,
)


class _Sequence:
    """Driver-internal state of one generating sequence."""

    __slots__ = ("handle", "req", "state", "pos", "step", "finished")

    def __init__(self, handle: GenerationHandle, state: np.ndarray) -> None:
        self.handle = handle
        self.req = handle.request
        #: recurrent state fed into the next step (device-resident view
        #: after the first step)
        self.state = state
        #: index of the last prompt token consumed so far
        self.pos = 0
        #: the in-flight step's serving handle (None between steps)
        self.step: Optional[RequestHandle] = None
        self.finished = False


class GenerationSession:
    """Drives autoregressive sequences through a batching session.

    Parameters
    ----------
    session:
        The :class:`~repro.serve.session.InferenceSession` compiled over a
        decoder-step model (``main(state, inp) -> (new_state, logits)``).
        Simulated driving (:meth:`generate`) requires its clock to be a
        :class:`~repro.serve.clock.SimulatedClock`.  Mutually exclusive
        with ``server``.
    server / endpoint:
        Wall-clock mode: the running :class:`~repro.serve.server.Server`
        and the name of the decoder endpoint on it.  Steps are resubmitted
        through ``server.submit`` from a pump thread (:meth:`submit` /
        :meth:`close`).
    model:
        The decoder model module (e.g. ``repro.models.declm`` or
        ``repro.models.declm.gru``): supplies ``embedding`` /
        ``initial_state`` / ``select_token`` / ``instance_input``.
    size:
        The model's :class:`~repro.models.configs.ModelSize` (``classes``
        doubles as the vocabulary size).
    seed:
        Embedding-table seed; must match the reference
        (:func:`reference_generate` uses the same default).
    eos_id:
        Token id that terminates a sequence (None: only ``max_new_tokens``
        stops it).
    step_host_ms:
        Modelled host time per processed step result (token selection +
        resubmission) charged to the simulated clock; the wall clock pays
        the real cost instead.
    """

    def __init__(
        self,
        session: Any = None,
        model: Any = None,
        size: Any = None,
        *,
        server: Any = None,
        endpoint: Optional[str] = None,
        seed: int = 0,
        eos_id: Optional[int] = None,
        step_host_ms: float = 0.05,
    ) -> None:
        if (session is None) == (server is None):
            raise ValueError("pass exactly one of session= or server=")
        if model is None or size is None:
            raise ValueError("GenerationSession needs model= and size=")
        if server is not None and endpoint is None:
            raise ValueError("wall-clock mode needs endpoint= (the name)")
        self._server = server
        self._endpoint = endpoint
        if server is not None:
            session = server.endpoint(endpoint).session
        self._session = session
        self.model = model
        self.size = size
        self.eos_id = eos_id
        self.step_host_ms = float(step_host_ms)
        self.metrics = GenerationMetrics()
        # surface the decode SLO view in Endpoint.summary()/Server.summary()
        session.generation_metrics = self.metrics
        # state feedback is marked device-resident only on the simulated
        # driver: the wall loop thread owns the residency cache mid-flush
        self._mark_resident = server is None
        # pre-slice the embedding rows once: each row is then a *stable*
        # object across every step that consumes that token, so the device
        # residency cache treats the table as uploaded-once (a real serving
        # stack keeps the embedding matrix resident)
        self._embedding = model.embedding(size, seed=seed)
        self._emb_rows = [
            self._embedding[i : i + 1] for i in range(self._embedding.shape[0])
        ]
        self._counter = itertools.count()
        # wall-clock pump state (started lazily by the first submit)
        self._pump: Optional[threading.Thread] = None
        self._events: "queue.Queue" = queue.Queue()
        self._wall_live = 0
        self._wall_cond = threading.Condition()

    # -- shared per-step logic -------------------------------------------------
    def _first_instance(self, seq: _Sequence) -> Any:
        return self.model.instance_input(
            None, (seq.state, self._emb_rows[seq.req.prompt[0]])
        )

    def _next_instance(self, seq: _Sequence, token: int) -> Any:
        return self.model.instance_input(None, (seq.state, self._emb_rows[token]))

    def _retire(
        self,
        seq: _Sequence,
        at: float,
        status: str,
        error: Optional[BaseException] = None,
    ) -> None:
        seq.finished = True
        seq.handle._finish(status, at, error)
        self.metrics.record(seq.handle.stats)

    def _consume_result(
        self, seq: _Sequence, result: Any, at: float
    ) -> Optional[Tuple[Any, bool]]:
        """Apply one completed step's ``(new_state, logits)`` to ``seq``.

        Emits a token when the prompt is exhausted, applies EOS /
        ``max_new_tokens`` / cancellation / deadline stopping, and returns
        the next step's instance (plus whether the sequence is still in
        prefill) — or None when the sequence retired.
        """
        handle = seq.handle
        req = seq.req
        handle.stats.steps += 1
        if handle.cancel_requested:
            self._retire(
                seq, at, "cancelled",
                GenerationCancelled("generation cancelled mid-sequence"),
            )
            return None
        if req.deadline is not None and at > req.deadline:
            self._retire(
                seq, at, "expired",
                GenerationExpired(
                    f"deadline {req.deadline!r} passed at step completion {at!r}"
                ),
            )
            return None
        state, logits = flatten_arrays(result)
        seq.state = state
        if self._mark_resident:
            # the state is a zero-copy view into a device-born output arena:
            # feeding it back costs no host→device transfer, and the arena id
            # is never recycled so later rounds cannot overwrite it
            self._session.engine.device.note_resident(state)
        if seq.pos < len(req.prompt) - 1:
            # still prefilling: consume the next prompt token, emit nothing
            seq.pos += 1
            return self._next_instance(seq, req.prompt[seq.pos]), True
        token = self.model.select_token(logits)
        try:
            handle._emit(token, at)
        except BaseException as exc:
            # a raising on_token callback kills only this sequence
            self._retire(seq, at, "failed", exc)
            return None
        if (self.eos_id is not None and token == self.eos_id) or len(
            handle.tokens
        ) >= req.max_new_tokens:
            self._retire(seq, at, "done")
            return None
        return self._next_instance(seq, token), False

    # ==========================================================================
    # simulated mode
    # ==========================================================================
    def generate(
        self,
        requests: Sequence[GenerationRequest],
        *,
        deterministic: bool = True,
        host_model: Optional[Tuple[float, float]] = None,
        prepare: bool = False,
    ) -> List[GenerationHandle]:
        """Deterministically generate every request on the simulated clock.

        The decode twin of ``ServeLoop.run_trace``: arrivals and step
        completions interleave as timed events, flushed rounds execute on a
        :class:`~repro.serve.loop.DeviceTimeline` (device time pipelines,
        host time serializes with intake), and with ``deterministic``
        (default) the measured host wall time is excluded — the same
        request list replays bit-for-bit.  ``host_model`` is the
        deterministic ``(per_round_ms, per_request_ms)`` flush-cost model;
        ``prepare`` turns on the overlapped host pipeline (the next decode
        round's schedule/placement/plan is speculatively built while the
        previous round's device share drains — the round's *structure* is
        known before its token values are).

        Returns one :class:`GenerationHandle` per request, in input order,
        all finished.
        """
        if self._server is not None:
            raise RuntimeError(
                "generate() drives the simulated clock; this GenerationSession "
                "is in wall-clock server mode — use submit()"
            )
        if not isinstance(self._session.clock, SimulatedClock):
            raise RuntimeError(
                "generate() needs the session on a SimulatedClock; for "
                "wall-clock generation put the model behind a Server and use "
                "GenerationSession(server=..., endpoint=...)"
            )
        session = self._session
        clock = session.clock
        # one lane per group member, so multi-device decode rounds overlap
        # lane-wise exactly as in ServeLoop.run_trace
        timeline = DeviceTimeline(
            clock.now(), num_devices=getattr(session.engine, "num_devices", 1)
        )
        handles = [GenerationHandle(req) for req in requests]
        with replay_state(
            [session],
            deterministic=deterministic,
            host_model=host_model,
            timeline=timeline,
        ):
            self._run_simulated(handles, timeline, prepare)
        return handles

    def _submit_step_simulated(
        self, seq: _Sequence, instance: Any, at: float, ready: List
    ) -> None:
        seq.step = handle = self._session.submit(instance, at=at)
        clock = self._session.clock

        def _resolved(h: RequestHandle, seq: _Sequence = seq) -> None:
            # success: the event fires at the round's (possibly future)
            # completion timestamp; failure (cancel/abort): at the clock
            at = h.stats.completed_at if h.stats is not None else clock.now()
            heapq.heappush(ready, (at, next(self._counter), seq))

        handle.add_done_callback(_resolved)

    def _sweep_lifecycle(self, live: "Dict[_Sequence, None]", now: float) -> None:
        """Round-boundary lifecycle point: withdraw the pending step of any
        sequence that was cancelled (or whose deadline passed) before the
        round formed — its DFG nodes leave the shared graph and round-mates
        flush as if it had never stepped."""
        for seq in list(live):
            step = seq.step
            if seq.finished or step is None or step.done:
                continue
            if seq.handle.cancel_requested:
                self._session.cancel(step)
                del live[seq]
                self._retire(
                    seq, now, "cancelled",
                    GenerationCancelled(
                        "generation cancelled before its round formed"
                    ),
                )
            elif seq.req.deadline is not None and now > seq.req.deadline:
                self._session.cancel(step)
                del live[seq]
                self._retire(
                    seq, now, "expired",
                    GenerationExpired(
                        f"deadline {seq.req.deadline!r} passed at {now!r} "
                        "with the step still unflushed"
                    ),
                )

    def _run_simulated(
        self,
        handles: List[GenerationHandle],
        timeline: DeviceTimeline,
        prepare: bool,
    ) -> None:
        session = self._session
        clock = session.clock
        arrivals: List[Tuple[float, int, GenerationHandle]] = sorted(
            (gh.request.arrival, i, gh) for i, gh in enumerate(handles)
        )
        arrivals.reverse()  # pop() takes the earliest
        ready: List[Tuple[float, int, _Sequence]] = []
        live: Dict[_Sequence, None] = {}
        #: completion horizon of the steps consumed since the last flush:
        #: their successors were resubmitted *future-dated* (at= their
        #: producing round's completion), so the next round cannot launch
        #: before the clock reaches this barrier — that window between
        #: "composition known" and "launchable" is where prepared host work
        #: hides
        barrier: Optional[float] = None

        while live or arrivals:
            na = arrivals[-1][0] if arrivals else None
            nc = ready[0][0] if ready else None
            if na is not None and (nc is None or na <= nc):
                if nc is None and session.pending_requests:
                    # pending steps would flush at the barrier; an arrival
                    # beyond it misses that round — flush first
                    flush_at = max(clock.now(), barrier or clock.now())
                    if na > flush_at:
                        barrier = self._quiesce(live, timeline, barrier, prepare)
                        continue
                t, _, gh = arrivals.pop()
                clock.advance_to(t)
                req = gh.request
                seq = _Sequence(gh, self.model.initial_state(self.size))
                if req.deadline is not None and t > req.deadline:
                    self._retire(
                        seq, t, "expired",
                        GenerationExpired(
                            f"deadline {req.deadline!r} already passed on "
                            f"arrival at {t!r}"
                        ),
                    )
                    continue
                live[seq] = None
                self._submit_step_simulated(
                    seq, self._first_instance(seq), t, ready
                )
                continue
            if nc is not None:
                c, _, seq = heapq.heappop(ready)
                if seq.finished:
                    continue
                barrier = c if barrier is None else max(barrier, c)
                # host-side step cost: unpack, argmax, resubmit (serial
                # with intake, like the flush host share)
                clock.charge(self.step_host_ms / 1e3)
                step, seq.step = seq.step, None
                err = step.exception(0)
                if err is not None:
                    del live[seq]
                    status = (
                        "cancelled" if isinstance(err, RequestCancelled)
                        else "expired" if isinstance(err, RequestExpired)
                        else "failed"
                    )
                    self._retire(seq, c, status, err)
                    continue
                nxt = self._consume_result(seq, step.result(), c)
                if nxt is None:
                    del live[seq]
                    continue
                # resubmit future-dated at the producing round's completion:
                # the step logically exists once its input state does.  The
                # clock may still lag behind c, which is exactly the
                # prepare window — and the submit is never *behind* an
                # earlier pending arrival because events are consumed in
                # timestamp order.
                self._submit_step_simulated(seq, nxt[0], c, ready)
                continue
            # quiesce: every live step awaits a flush
            if not session.pending_requests and barrier is None:
                raise RuntimeError(
                    "generation driver stalled: live sequences with no "
                    "pending steps, no events, and no barrier"
                )
            barrier = self._quiesce(live, timeline, barrier, prepare)

    def _quiesce(
        self,
        live: "Dict[_Sequence, None]",
        timeline: DeviceTimeline,
        barrier: Optional[float],
        prepare: bool,
    ) -> Optional[float]:
        """Round boundary: sweep lifecycle, speculate, advance to the
        barrier, and let the flush policy launch the accumulated round.
        Returns the new (cleared) barrier."""
        session = self._session
        clock = session.clock
        self._sweep_lifecycle(live, clock.now())
        if session.pending_requests and prepare:
            session.consider_prepare(clock.now())
        if barrier is not None:
            clock.advance_to(barrier)
        timeline.pop_completions(clock.now())
        if session.pending_requests:
            if session.poll() is None and session.pending_requests:
                if session.policy.on_idle(session, clock.now()):
                    session.flush(reason=session.policy.name)
                else:
                    # policies with no idle rule (manual) must still make
                    # progress — generation would otherwise deadlock
                    session.flush(reason="drain")
        return None

    # ==========================================================================
    # wall-clock mode
    # ==========================================================================
    def submit(self, request: GenerationRequest) -> GenerationHandle:
        """Start generating one sequence through the running server's loop
        (wall-clock mode); returns immediately with a streamable handle."""
        if self._server is None:
            raise RuntimeError(
                "submit() is the wall-clock entry point; this "
                "GenerationSession drives a simulated session — use generate()"
            )
        handle = GenerationHandle(request)
        now = self._server.clock.now()
        handle.submitted_at = now
        handle.stats.submitted_at = now
        with self._wall_cond:
            self._wall_live += 1
            if self._pump is None:
                self._pump = threading.Thread(
                    target=self._pump_loop, name="generation-pump", daemon=True
                )
                self._pump.start()
        self._events.put(("new", _Sequence(handle, self.model.initial_state(self.size))))
        return handle

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted sequence has finished."""
        with self._wall_cond:
            if not self._wall_cond.wait_for(
                lambda: self._wall_live == 0, timeout=timeout
            ):
                raise TimeoutError(
                    f"{self._wall_live} sequences still generating after "
                    f"{timeout}s"
                )

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain and stop the pump thread."""
        self.drain(timeout=timeout)
        pump = self._pump
        if pump is not None:
            self._events.put(None)
            pump.join(timeout=timeout)
            self._pump = None

    def __enter__(self) -> "GenerationSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    def _wall_submit_step(self, seq: _Sequence, instance: Any) -> None:
        seq.step = self._server.submit(
            self._endpoint, instance, deadline=seq.req.deadline
        )
        seq.step.add_done_callback(
            lambda _h, seq=seq: self._events.put(("step", seq))
        )

    def _wall_retired(self) -> None:
        with self._wall_cond:
            self._wall_live -= 1
            self._wall_cond.notify_all()

    def _pump_loop(self) -> None:
        clock = self._server.clock
        while True:
            ev = self._events.get()
            if ev is None:
                return
            kind, seq = ev
            try:
                if kind == "new":
                    if seq.handle.cancel_requested:
                        self._retire(
                            seq, clock.now(), "cancelled",
                            GenerationCancelled("cancelled before first step"),
                        )
                        self._wall_retired()
                        continue
                    self._wall_submit_step(seq, self._first_instance(seq))
                    continue
                # completed step
                step, seq.step = seq.step, None
                err = step.exception(0)
                at = (
                    step.stats.completed_at if step.stats is not None
                    else clock.now()
                )
                if err is not None:
                    status = (
                        "cancelled" if isinstance(err, RequestCancelled)
                        else "expired" if isinstance(err, RequestExpired)
                        else "failed"
                    )
                    self._retire(seq, at, status, err)
                    self._wall_retired()
                    continue
                # note: unlike the simulated driver, the wall pump does not
                # mark the fed-back state resident — the residency cache is
                # owned by the loop thread mid-flush, and the cost is only a
                # modelled re-upload of one (1, hidden) row per step
                nxt = self._consume_result(seq, step.result(), at)
                if nxt is None:
                    self._wall_retired()
                    continue
                self._wall_submit_step(seq, nxt[0])
            except BaseException as exc:  # pump must survive any sequence
                if not seq.handle.done:
                    self._retire(seq, clock.now(), "failed", exc)
                    self._wall_retired()


def reference_generate(
    module: Any,
    params: Any,
    model: Any,
    size: Any,
    prompt: Sequence[int],
    max_new_tokens: int,
    *,
    eos_id: Optional[int] = None,
    seed: int = 0,
) -> List[int]:
    """Eager unbatched ground truth for one sequence.

    Runs the decoder cell step by step through
    :func:`~repro.core.api.reference_run`, sharing the embedding table,
    state initialization, output unpacking and greedy selection rule with
    the batched driver — so a batched trajectory that matches this one
    bitwise proves the whole per-step re-batching path changed nothing.
    """
    from ..core.api import reference_run

    emb = model.embedding(size, seed=seed)
    state = model.initial_state(size)
    tokens: List[int] = []
    pos = 0
    inp_token = prompt[0]
    while True:
        out = reference_run(
            module, params,
            [model.instance_input(module, (state, emb[inp_token : inp_token + 1]))],
        )[0]
        state, logits = flatten_arrays(out)
        if pos < len(prompt) - 1:
            pos += 1
            inp_token = prompt[pos]
            continue
        token = model.select_token(logits)
        tokens.append(token)
        if (eos_id is not None and token == eos_id) or len(tokens) >= max_new_tokens:
            return tokens
        inp_token = token
