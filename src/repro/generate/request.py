"""Generation-level requests, handles and per-step SLO metrics.

A generation request is a *sequence* of serving requests: one per decode
step, each re-entering the round former.  The lifecycle therefore lives
above :class:`~repro.serve.request.RequestHandle`:

* :class:`GenerationRequest` — prompt, stopping rule (``max_new_tokens`` /
  EOS), arrival time, optional absolute deadline and streaming callback;
* :class:`GenerationHandle` — future-style result (the token list), a
  :meth:`~GenerationHandle.stream` iterator delivering tokens as their
  rounds complete, :meth:`~GenerationHandle.cancel`, and per-sequence
  :class:`GenerationStats`;
* :class:`GenerationMetrics` — the aggregate SLO view serving dashboards
  watch: time-to-first-step (TTFS, arrival → first emitted token) and
  inter-step gap percentiles; attached to the driving
  :class:`~repro.serve.session.InferenceSession` so ``Endpoint.summary()``
  reports it.

Cancellation and expiry fail the handle with :class:`GenerationCancelled` /
:class:`GenerationExpired` (subclasses of the serve-layer exceptions, so
``except RequestCancelled`` catches both); partial tokens stay readable on
:attr:`GenerationHandle.tokens`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional

import numpy as np

from ..serve.request import RequestCancelled, RequestExpired


class GenerationCancelled(RequestCancelled):
    """The sequence was cancelled; it was dropped at the next round
    boundary and emitted no further tokens."""


class GenerationExpired(RequestExpired):
    """The sequence's deadline passed; it was dropped at the next round
    boundary and emitted no further tokens."""


@dataclass
class GenerationRequest:
    """One autoregressive sequence to generate.

    ``prompt`` must be non-empty: the step consuming its last token emits
    the first generated token (that step's completion is the TTFS mark).
    ``deadline`` is an absolute clock timestamp; a sequence still live when
    it passes is dropped at the next round boundary.  ``on_token(handle,
    token, index, at)`` streams each emitted token as its round completes
    — the handle comes first so a callback can cancel its own sequence.
    """

    prompt: List[int]
    max_new_tokens: int = 16
    arrival: float = 0.0
    deadline: Optional[float] = None
    on_token: Optional[Callable[["GenerationHandle", int, int, float], Any]] = None

    def __post_init__(self) -> None:
        if not self.prompt:
            raise ValueError("generation needs a non-empty prompt")
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")


@dataclass
class GenerationStats:
    """Per-sequence generation statistics."""

    #: arrival timestamp of the generation request
    submitted_at: float = 0.0
    #: completion timestamp of the round that emitted the first token
    first_token_at: Optional[float] = None
    #: timestamp at which the sequence left the system (done or dropped)
    finished_at: Optional[float] = None
    #: serving rounds this sequence rode (prefill + decode steps)
    steps: int = 0
    #: generated tokens emitted (includes EOS when generation hit it)
    tokens: int = 0
    #: gaps between consecutive token emissions (ms) — the inter-step SLO
    inter_step_ms: List[float] = field(default_factory=list)
    #: "done" / "cancelled" / "expired" / "failed"
    status: str = "pending"

    @property
    def ttfs_ms(self) -> Optional[float]:
        """Time-to-first-step: arrival → first emitted token (ms)."""
        if self.first_token_at is None:
            return None
        return max(0.0, self.first_token_at - self.submitted_at) * 1e3

    @property
    def inter_step_p99_ms(self) -> float:
        if not self.inter_step_ms:
            return 0.0
        return float(np.percentile(self.inter_step_ms, 99))


class GenerationHandle:
    """Future-style handle for one generating sequence.

    Tokens accumulate in :attr:`tokens` as their rounds complete;
    :meth:`result` waits for the full sequence, :meth:`stream` iterates
    tokens as they arrive (both thread-safe — in wall-clock mode the pump
    thread emits while consumers wait)."""

    def __init__(self, request: GenerationRequest) -> None:
        self.request = request
        self.submitted_at = request.arrival
        #: tokens emitted so far (live view; do not mutate)
        self.tokens: List[int] = []
        self.done = False
        self.error: Optional[BaseException] = None
        self.stats = GenerationStats(submitted_at=request.arrival)
        self._cond = threading.Condition()
        self._cancel_requested = False
        self._last_emit_at: Optional[float] = None

    # -- consumption -----------------------------------------------------------
    def result(self, timeout: Optional[float] = None) -> List[int]:
        """The full generated token list; blocks until the sequence
        finishes (raises its failure — e.g. :class:`GenerationCancelled` —
        when it was dropped)."""
        with self._cond:
            if not self._cond.wait_for(lambda: self.done, timeout=timeout):
                raise TimeoutError(f"generation not finished within {timeout}s")
        if self.error is not None:
            raise self.error
        return list(self.tokens)

    def stream(self, timeout: Optional[float] = None) -> Iterator[int]:
        """Yield tokens as their rounds complete, ending when the sequence
        finishes.  A dropped sequence raises its failure after the partial
        tokens have been yielded.  ``timeout`` bounds each wait."""
        i = 0
        while True:
            with self._cond:
                if not self._cond.wait_for(
                    lambda: len(self.tokens) > i or self.done, timeout=timeout
                ):
                    raise TimeoutError(f"no token within {timeout}s")
                available = len(self.tokens)
                finished = self.done
            while i < available:
                yield self.tokens[i]
                i += 1
            if finished and i >= available:
                if self.error is not None:
                    raise self.error
                return

    @property
    def failed(self) -> bool:
        return self.done and self.error is not None

    # -- lifecycle -------------------------------------------------------------
    def cancel(self) -> bool:
        """Request cancellation; the driver drops the sequence at the next
        round boundary (its pending step is withdrawn before the round
        forms when possible).  Returns False once the sequence already
        finished."""
        with self._cond:
            if self.done:
                return False
            self._cancel_requested = True
        return True

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_requested

    # -- driver internals ------------------------------------------------------
    def _emit(self, token: int, at: float) -> None:
        with self._cond:
            if self.stats.first_token_at is None:
                self.stats.first_token_at = at
            elif self._last_emit_at is not None:
                self.stats.inter_step_ms.append(
                    max(0.0, at - self._last_emit_at) * 1e3
                )
            self._last_emit_at = at
            self.tokens.append(token)
            self.stats.tokens = len(self.tokens)
            self._cond.notify_all()
        cb = self.request.on_token
        if cb is not None:
            # a raising callback cancels only this sequence (the driver
            # fails the handle with the callback's error), never the round
            cb(self, token, len(self.tokens) - 1, at)

    def _finish(self, status: str, at: float, error: Optional[BaseException] = None) -> None:
        with self._cond:
            if self.done:
                return
            self.stats.status = status
            self.stats.finished_at = at
            self.error = error
            self.done = True
            self._cond.notify_all()

    def __repr__(self) -> str:
        state = self.stats.status if self.done else "generating"
        return f"GenerationHandle(tokens={len(self.tokens)}, {state})"


class GenerationMetrics:
    """Aggregate per-step SLO metrics across finished sequences.

    Attached to the driving session as ``session.generation_metrics`` so
    :meth:`Endpoint.summary` / :meth:`Server.summary` surface the decode
    SLO view next to the serving counters."""

    def __init__(self) -> None:
        self.requests = 0
        self.tokens = 0
        self.steps = 0
        self.cancelled = 0
        self.expired = 0
        self._ttfs_ms: List[float] = []
        self._inter_step_ms: List[float] = []

    def record(self, stats: GenerationStats) -> None:
        self.requests += 1
        self.tokens += stats.tokens
        self.steps += stats.steps
        if stats.status == "cancelled":
            self.cancelled += 1
        elif stats.status == "expired":
            self.expired += 1
        ttfs = stats.ttfs_ms
        if ttfs is not None:
            self._ttfs_ms.append(ttfs)
        self._inter_step_ms.extend(stats.inter_step_ms)

    @staticmethod
    def _pct(values: List[float], q: float) -> float:
        return float(np.percentile(values, q)) if values else 0.0

    @property
    def ttfs_p50_ms(self) -> float:
        return self._pct(self._ttfs_ms, 50)

    @property
    def ttfs_p99_ms(self) -> float:
        return self._pct(self._ttfs_ms, 99)

    @property
    def inter_step_p99_ms(self) -> float:
        return self._pct(self._inter_step_ms, 99)

    def summary(self) -> dict:
        """The ``Endpoint.summary()`` merge payload."""
        return {
            "gen_requests": self.requests,
            "gen_tokens": self.tokens,
            "gen_cancelled": self.cancelled,
            "gen_expired": self.expired,
            "ttfs_p50_ms": self.ttfs_p50_ms,
            "ttfs_p99_ms": self.ttfs_p99_ms,
            "inter_step_p99_ms": self.inter_step_p99_ms,
        }
