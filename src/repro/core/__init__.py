"""Facade over the ACROBAT compiler + runtime (the paper's core contribution)."""

from .api import compile_model, reference_run

__all__ = ["compile_model", "reference_run"]
