"""Top-level user API.

* :func:`compile_model` — compile an IR module + parameters into an
  executable model.  With ``options.aot=False`` the returned object executes
  through the Relay-VM-style interpreter instead of AOT-generated code
  (Table 4's baseline); the ``run`` interface is identical.
* :func:`open_session` — compile a model and open a persistent
  :class:`~repro.serve.session.InferenceSession` that batches across
  independently submitted requests (the serving path).
* :func:`reference_run` — unbatched eager execution used as numerical ground
  truth.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..compiler.driver import CompiledModel, compile_module
from ..compiler.options import CompilerOptions
from ..serve.session import InferenceSession
from ..ir.module import IRModule
from ..runtime.device import GPUSpec
from ..vm.interpreter import VMModel, run_reference

ExecutableModel = Union[CompiledModel, VMModel]


def compile_model(
    module: IRModule,
    params: Mapping[str, np.ndarray],
    options: Optional[CompilerOptions] = None,
    gpu_spec: Optional[GPUSpec] = None,
) -> ExecutableModel:
    """Compile ``module`` with bound ``params`` into an executable model.

    Parameters
    ----------
    module:
        IR module whose ``main`` takes the model parameters plus the
        per-instance inputs.
    params:
        Mapping from parameter names of ``main`` to concrete weight arrays;
        every unbound parameter becomes a per-instance input.
    options:
        Compiler options; ``options.aot=False`` selects the interpreted
        (Relay-VM) execution path.
    gpu_spec:
        Optional custom simulated-GPU parameters.
    """
    options = options or CompilerOptions()
    if options.scheduler is not None:
        # fail fast on unknown policy names: resolving lazily inside engine
        # construction would surface the error far from the user's typo
        from ..engine.registry import available_policies

        if options.scheduler not in available_policies():
            raise ValueError(
                f"unknown scheduler policy {options.scheduler!r} in "
                f"CompilerOptions.scheduler; registered policies: "
                f"{', '.join(available_policies())}"
            )
    if not options.aot:
        return VMModel(
            module=module,
            params={k: np.asarray(v) for k, v in params.items()},
            gpu_spec=gpu_spec,
            gather_fusion=options.gather_fusion,
        )
    return compile_module(module, params, options, gpu_spec)


def open_session(
    module: IRModule,
    params: Mapping[str, np.ndarray],
    options: Optional[CompilerOptions] = None,
    gpu_spec: Optional[GPUSpec] = None,
    max_batch: Optional[int] = None,
    *,
    policy: Any = None,
    policy_args: Optional[Mapping[str, Any]] = None,
    clock: Any = None,
) -> InferenceSession:
    """Compile ``module`` and open a cross-request batching session.

    Requests enter via :meth:`~repro.serve.session.InferenceSession.submit`
    and accumulate in the lazy DFG; execution happens when the session's
    flush policy fires or on an explicit
    :meth:`~repro.serve.session.InferenceSession.flush`, batching across
    the independently submitted requests.  ``policy``/``policy_args`` name
    a flush policy from :mod:`repro.serve.policy` (``max_batch=n`` is
    deprecated sugar for ``policy="size", policy_args={"n": n}``); ``clock``
    overrides the session's time source.
    """
    model = compile_model(module, params, options, gpu_spec)
    return model.session(
        max_batch=max_batch,
        flush_policy=policy,
        flush_args=dict(policy_args) if policy_args else None,
        clock=clock,
    )


def reference_run(
    module: IRModule,
    params: Mapping[str, np.ndarray],
    instances: Sequence[Any],
) -> List[Any]:
    """Unbatched eager execution of ``module`` over ``instances`` (ground
    truth for all other backends)."""
    return run_reference(module, params, instances)
