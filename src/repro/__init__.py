"""ACROBAT reproduction: compile-time optimized auto-batching for dynamic
deep learning (Fegade et al., MLSys 2024).

Package map:

* :mod:`repro.ir` -- the Relay-like functional input language.
* :mod:`repro.analysis` -- static analyses (taint/parameter-reuse, hoisting,
  phases, duplication, structure).
* :mod:`repro.kernels` -- operator registry, static blocks, fusion, batched
  kernels, auto-scheduling.
* :mod:`repro.runtime` -- lazy DFGs, schedulers, batched executor, fibers,
  GPU simulator, profiler.
* :mod:`repro.memory` -- arena-backed batched tensor storage and the
  ahead-of-execution memory planner (contiguity / gather classification).
* :mod:`repro.devices` -- multi-device execution: the Device protocol,
  device groups with interconnect cost models, and the placement-policy
  registry (single / round_robin / data_parallel).
* :mod:`repro.engine` -- the execution-engine layer: runtime orchestration,
  the scheduler-policy registry.
* :mod:`repro.serve` -- the serving subsystem: flush policies, awaitable
  request futures, policy-driven cross-request batching sessions, the
  single-owner serving event loop (thread-safe bounded admission +
  continuous batching), multi-model servers, clocks and open-loop traffic
  generation.
* :mod:`repro.compiler` -- options, AOT Python codegen, compiled-model driver.
* :mod:`repro.vm` -- Relay-VM-style interpreter baseline + eager reference.
* :mod:`repro.baselines` -- DyNet-style dynamic batching, eager (PyTorch-like)
  execution, Cortex-style recursive batching.
* :mod:`repro.models` -- the seven evaluation models from the paper.
* :mod:`repro.data` -- synthetic datasets standing in for SST / XNLI.
* :mod:`repro.experiments` -- drivers regenerating every table and figure.
"""

from .compiler.options import CompilerOptions

__version__ = "0.1.0"


def compile_model(*args, **kwargs):
    """Compile an IR module into an executable model.

    Lazy re-export of :func:`repro.core.api.compile_model`.
    """
    from .core.api import compile_model as _impl

    return _impl(*args, **kwargs)


def reference_run(*args, **kwargs):
    """Run a model unbatched with the eager reference interpreter.

    Lazy re-export of :func:`repro.core.api.reference_run`.
    """
    from .core.api import reference_run as _impl

    return _impl(*args, **kwargs)


def open_session(*args, **kwargs):
    """Compile a model and open a cross-request batching session.

    Lazy re-export of :func:`repro.core.api.open_session`.
    """
    from .core.api import open_session as _impl

    return _impl(*args, **kwargs)


#: serving-layer names importable from the top level (lazy, so importing
#: ``repro`` stays cheap): ``repro.Server``, ``repro.SimulatedClock``, ...
_SERVE_EXPORTS = (
    "Server",
    "Endpoint",
    "FlushPolicy",
    "ServeLoop",
    "DeviceTimeline",
    "BackpressureFull",
    "RequestShed",
    "LoopStopped",
    "RoundAborted",
    "SimulatedClock",
    "WallClock",
    "available_flush_policies",
    "make_flush_policy",
    "register_flush_policy",
    "QuotaExceeded",
    "TokenBucket",
    "AdmissionController",
    "LoopTopology",
    "available_topologies",
    "make_topology",
    "register_topology",
    "run_topology_trace",
    "tenant_mix",
    "TenantSpec",
    "PRIORITY_CLASSES",
)

#: multi-device names importable from the top level (lazy):
#: ``repro.DeviceGroup``, ``repro.Interconnect``, ``repro.make_placement``...
_DEVICES_EXPORTS = (
    "DeviceGroup",
    "Interconnect",
    "PlacementPolicy",
    "available_placements",
    "make_placement",
    "register_placement",
)


def __getattr__(name):
    if name in _SERVE_EXPORTS:
        from . import serve as _serve

        return getattr(_serve, name)
    if name in _DEVICES_EXPORTS:
        from . import devices as _devices

        return getattr(_devices, name)
    if name == "GPUSpec":
        from .runtime.device import GPUSpec

        return GPUSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CompilerOptions",
    "compile_model",
    "open_session",
    "reference_run",
    "GPUSpec",
    "__version__",
    *_SERVE_EXPORTS,
    *_DEVICES_EXPORTS,
]
