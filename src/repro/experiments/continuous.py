"""Continuous-vs-caller-driven serving benchmark under bursty traffic.

The serving benchmark (:mod:`repro.experiments.serving`) measures *when* to
flush and the sharding benchmark *where*; this one measures **who drives
the intake**.  The same bursty open-loop trace is replayed twice per
model/flush-policy pair:

* ``caller`` — the historical single-threaded choreography
  (:func:`repro.serve.traffic.replay`): each flush blocks intake for the
  round's full latency, so requests arriving during execution are only
  submitted after the round completes and the device idles while the host
  prepares the next round;
* ``continuous`` — the :class:`~repro.serve.loop.ServeLoop`
  (:func:`repro.serve.traffic.replay_continuous`): rounds launch onto the
  device timeline the moment the policy fires, intake streams on while the
  device executes, in-flight rounds inform the adaptive policy, and the
  device-idle wakeup launches the accumulated backlog back-to-back.

Both modes run **deterministically**: measured host wall time is excluded
and replaced by a fixed linear host-cost model (``HOST_MODEL`` ms per round
+ per request, the same for both modes), so every number in the table is a
pure function of the trace and the device cost model — the table is
bit-for-bit reproducible across runs and hosts, which the
``deterministic`` column verifies by replaying each configuration twice.

Like the sharding sweep, the benchmark runs paper-"small" models on the
deliberately compute-starved edge-class spec so the device — not this
reproduction's Python host — is the bottleneck; the traffic rate sits at
open-loop saturation, where the caller-driven loop's blocked intake
visibly costs throughput and tail latency.  Every row's outputs are
checked against the eager reference — intake choreography must never
change results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..compiler.options import CompilerOptions
from ..core.api import compile_model, reference_run
from ..devices.group import DeviceGroup
from ..ir.adt import ADTValue
from ..runtime.device import DeviceSimulator
from ..serve.clock import SimulatedClock
from ..serve.traffic import TrafficReport, bursty_arrivals, replay, replay_continuous
from ..utils import values_allclose
from .harness import (
    ExperimentScale,
    build_model,
    current_scale,
    format_table,
    make_instances,
    save_result,
)
from .sharding import EDGE_SPEC

HEADERS = (
    "model",
    "policy",
    "mode",
    "throughput_rps",
    "p50_ms",
    "p99_ms",
    "mean_batch",
    "flushes",
    "launches",
    "matches_ref",
    "deterministic",
)

MODELS = ("treelstm", "birnn")

#: flush-policy pairs compared under both intake modes
POLICIES: Tuple[Tuple[str, str, Dict], ...] = (
    ("deadline(5ms)", "deadline", {"ms": 5.0}),
    ("adaptive", "adaptive", {}),
)

#: device-bound regime (see module docstring): paper-"small" sizes on the
#: sharding sweep's edge-class spec
SIZE_NAME = "small"

#: bursty open-loop traffic at saturation: bursts of BURST near-simultaneous
#: requests, average rate just above the single-device service rate
ARRIVAL_RATE = {"reduced": 200.0, "paper": 200.0}
NUM_REQUESTS = {"reduced": 48, "paper": 96}
BURST = 6

#: deterministic host-cost model, identical for both modes:
#: (per_round_ms, per_request_ms) of serial host work per flush — the
#: blocked-intake phenomenon a caller-driven loop suffers from, without
#: wall-clock noise (constants in the ballpark of the measured Python host
#: share at this scale)
HOST_MODEL = (2.0, 0.75)


def _bitwise_equal(a, b) -> bool:
    """Exact (bit-for-bit) equality over nested outputs (ADT values, tuples,
    lists, arrays — the same structures :func:`values_allclose` walks)."""
    if isinstance(a, ADTValue) or isinstance(b, ADTValue):
        return (
            isinstance(a, ADTValue)
            and isinstance(b, ADTValue)
            and a.constructor.name == b.constructor.name
            and len(a.fields) == len(b.fields)
            and all(_bitwise_equal(x, y) for x, y in zip(a.fields, b.fields))
        )
    if isinstance(a, (list, tuple)) or isinstance(b, (list, tuple)):
        return (
            isinstance(a, (list, tuple))
            and isinstance(b, (list, tuple))
            and len(a) == len(b)
            and all(_bitwise_equal(x, y) for x, y in zip(a, b))
        )
    return bool(np.array_equal(np.asarray(a), np.asarray(b)))


def _replay_mode(
    compiled,
    requests,
    arrivals,
    mode: str,
    policy: str,
    policy_args: Dict,
    devices: int = 1,
    placement: str = "single",
) -> TrafficReport:
    if devices > 1:
        # multi-device rows (the pipeline+continuous composition) run on a
        # DeviceGroup; single-device rows keep the original standalone
        # simulator so the committed baselines stay bit-identical
        session = compiled.serve(
            policy,
            clock=SimulatedClock(),
            devices=DeviceGroup(devices, spec=EDGE_SPEC, interconnect="nvlink"),
            placement=placement,
            **policy_args,
        )
    else:
        session = compiled.serve(
            policy,
            clock=SimulatedClock(),
            device=DeviceSimulator(spec=EDGE_SPEC),
            **policy_args,
        )
    fn = replay if mode == "caller" else replay_continuous
    return fn(
        session, requests, arrivals, deterministic=True, host_model=HOST_MODEL
    )


def run(scale: Optional[ExperimentScale] = None) -> Tuple[Tuple[str, ...], List[List]]:
    """The intake-mode table (one row per model x policy x mode)."""
    scale = scale or current_scale()
    n = NUM_REQUESTS.get(scale.name, 48)
    rate = ARRIVAL_RATE.get(scale.name, 200.0)

    rows: List[List] = []
    for model_name in MODELS:
        mod, params, size = build_model(model_name, SIZE_NAME, scale.seed)
        requests = make_instances(model_name, mod, size, n, seed=scale.seed + 4)
        reference = reference_run(mod, params, requests)
        compiled = compile_model(mod, params, CompilerOptions())
        arrivals = bursty_arrivals(rate, n, burst=BURST, seed=scale.seed + 5)

        for label, policy, policy_args in POLICIES:
            modes: Tuple[Tuple[str, Dict], ...] = (
                ("caller", {}),
                ("continuous", {}),
            )
            if policy == "adaptive":
                # the composition row: continuous intake + the depth-staged
                # placement on a 2-device group (full sweep in
                # :mod:`repro.experiments.pipeline`)
                modes += (
                    ("cont+pipeline@2", {"devices": 2, "placement": "pipeline"}),
                )
            for mode, extra in modes:
                report = _replay_mode(
                    compiled, requests, arrivals, mode, policy, policy_args,
                    **extra,
                )
                rerun = _replay_mode(
                    compiled, requests, arrivals, mode, policy, policy_args,
                    **extra,
                )
                deterministic = (
                    report.latencies_ms == rerun.latencies_ms
                    and _bitwise_equal(report.outputs, rerun.outputs)
                )
                ok = all(
                    values_allclose(a, b)
                    for a, b in zip(reference, report.outputs)
                )
                rows.append(
                    [
                        model_name,
                        label,
                        mode,
                        report.throughput_rps,
                        report.p50_ms,
                        report.p99_ms,
                        report.mean_batch,
                        report.num_flushes,
                        report.kernel_launches,
                        "yes" if ok else "NO",
                        "yes" if deterministic else "NO",
                    ]
                )
    return HEADERS, rows


def format_report(headers: Tuple[str, ...], rows: List[List]) -> str:
    return format_table(
        headers,
        rows,
        title=(
            "Continuous batching: bursty open-loop traffic, caller-driven vs "
            f"event-loop intake ({SIZE_NAME}-size models on a "
            f"{EDGE_SPEC.name} device; deterministic simulated time, host "
            f"model {HOST_MODEL[0]}ms/round + {HOST_MODEL[1]}ms/request)"
        ),
    )


def main() -> str:
    headers, rows = run()
    text = format_report(headers, rows)
    print(text)
    save_result("continuous", text)
    return text


if __name__ == "__main__":
    main()
