"""Kernel-specialization benchmark: steady-state dispatch + planning cost.

Measures what the shape-keyed specialization tier (:mod:`repro.specialize`)
is for: a serving session replaying structurally identical rounds pays host
time per round for memory planning and operand resolution (*dispatch*).
The plan cache already collapses planning to template replay; the
specialization tier collapses dispatch — promoted fingerprints resolve
through a frozen gather layout instead of re-deriving it.

One row per serving model, comparing steady-state ``dispatch +
memory_planning`` ms/round with the tier off vs on (same plan cache, same
scheduler, same requests).  Warmup rounds cover code-path warmup *and* the
promotion ramp (fingerprints promote after ``specialize_threshold``
recurrences), so the measured window is pure steady state.  Every round of
every configuration is checked *bitwise* against the eager reference —
specialization must be reference-identical, not merely close.

Methodology notes:

* host time is wall-clock, so each configuration is measured best-of-N
  (``REPRO_BEST_OF``, floor 3) — sub-millisecond per-round buckets on a
  busy host need the same hygiene as the other tables;
* the cyclic garbage collector is quiesced (collect, then disable) around
  each measured session, for both configurations: collector pauses trigger
  at allocation sites, which concentrates them in the allocation-heavy
  planning bucket and would otherwise add multi-tenth-millisecond noise to
  a sub-millisecond measurement (the same reason ``pyperf`` disables GC);
* requests are resubmitted each round from one request set, exactly the
  plan-cache steady-state scenario (PR 3's table) this tier extends.
"""

from __future__ import annotations

import argparse
import gc
import os
from typing import List, Optional, Tuple

import numpy as np

from ..compiler.options import CompilerOptions
from ..core.api import compile_model, reference_run
from ..utils import flatten_arrays
from .harness import (
    ExperimentScale,
    build_model,
    current_scale,
    format_table,
    make_instances,
    resolve_size_name,
    save_result,
)

MODELS = ("treelstm", "birnn", "stackrnn")

HEADERS = (
    "model",
    "rounds",
    "off_ms/round",
    "on_ms/round",
    "speedup",
    "dispatch_speedup",
    "promotions",
    "hits",
    "exact",
)


def _best_of() -> int:
    # sub-millisecond buckets: keep run_plan_cache's floor of 3
    return max(3, int(os.environ.get("REPRO_BEST_OF", "1")))


def _exact(a, b) -> bool:
    fa, fb = flatten_arrays(a), flatten_arrays(b)
    return len(fa) == len(fb) and all(
        np.array_equal(np.asarray(x), np.asarray(y)) for x, y in zip(fa, fb)
    )


def _measure(
    mod,
    params,
    requests,
    reference,
    specialize: bool,
    rounds: int,
    warmup: int,
    batch: int,
) -> Tuple[float, float, dict, bool]:
    """One serving session: returns (dispatch+planning ms/round,
    dispatch ms/round, specialize stats, reference-identical?) averaged
    over the measured (post-warmup) rounds."""
    compiled = compile_model(
        mod, params, CompilerOptions(kernel_specialization=specialize)
    )
    session = compiled.session(max_batch=batch)
    total = dispatch = 0.0
    exact = True
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for round_no in range(warmup + rounds):
            handles = [session.submit(r) for r in requests]
            session.flush()
            exact = exact and all(
                _exact(a, h.result()) for a, h in zip(reference, handles)
            )
            stats = session.last_stats
            if round_no >= warmup:
                d = stats.host_ms["dispatch"]
                dispatch += d
                total += d + stats.host_ms["memory_planning"]
    finally:
        if gc_was_enabled:
            gc.enable()
    return (
        total / rounds,
        dispatch / rounds,
        dict(session.last_stats.specialize or {}),
        exact,
    )


def run(
    scale: Optional[ExperimentScale] = None,
    rounds: int = 24,
    warmup: int = 6,
    batch: int = 8,
    best_of: Optional[int] = None,
) -> Tuple[Tuple[str, ...], List[List]]:
    """The specialization table: steady-state dispatch + planning ms/round,
    tier off vs on, one row per serving model."""
    scale = scale or current_scale()
    size_name = resolve_size_name(scale, scale.size_names[0])
    repeats = best_of if best_of is not None else _best_of()

    rows: List[List] = []
    for model_name in MODELS:
        mod, params, size = build_model(model_name, size_name, scale.seed)
        requests = make_instances(model_name, mod, size, batch, seed=scale.seed + 2)
        reference = reference_run(mod, params, requests)

        def once(specialize: bool):
            return _measure(
                mod, params, requests, reference, specialize, rounds, warmup, batch
            )

        # one untimed warmup per config, then best-of-N on the combined
        # steady-state bucket (the quantity the table reports)
        once(False)
        off = min((once(False) for _ in range(repeats)), key=lambda m: m[0])
        on = min((once(True) for _ in range(repeats)), key=lambda m: m[0])
        (off_ms, off_dispatch, _, off_exact) = off
        (on_ms, on_dispatch, spec, on_exact) = on
        rows.append(
            [
                model_name,
                rounds,
                off_ms,
                on_ms,
                off_ms / on_ms,
                off_dispatch / on_dispatch,
                int(spec.get("promotions", 0)),
                int(spec.get("hits", 0)),
                "yes" if (off_exact and on_exact) else "NO",
            ]
        )
    return HEADERS, rows


def format_report(headers: Tuple[str, ...], rows: List[List]) -> str:
    return format_table(
        headers,
        rows,
        title=(
            "Kernel specialization: steady-state serving, dispatch + "
            "memory-planning ms/round (plan cache on in both configs; "
            "exact = bitwise-identical to the eager reference)"
        ),
    )


def main(argv: Optional[List[str]] = None) -> str:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.specialization",
        description="Steady-state serving cost with the shape-keyed "
        "kernel-specialization tier off vs on.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: fewer rounds, single measurement, no result file",
    )
    args = parser.parse_args(list(argv) if argv is not None else [])
    if args.quick:
        headers, rows = run(rounds=6, warmup=4, batch=6, best_of=1)
        text = format_report(headers, rows)
        print(text)
        # the smoke gate: specialization engaged and stayed exact (speedup
        # floors are asserted by benchmarks/test_specialization.py, not by
        # a quick run on a shared CI box)
        for row in rows:
            assert row[-1] == "yes", f"{row[0]}: specialized run diverged"
        assert any(row[6] > 0 for row in rows), "no fingerprint promoted"
        return text
    headers, rows = run()
    text = format_report(headers, rows)
    print(text)
    save_result("specialization", text)
    return text


if __name__ == "__main__":
    import sys

    main(sys.argv[1:])
