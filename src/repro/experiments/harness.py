"""Shared experiment harness.

Builds models at a configurable scale, runs them through every backend
(ACROBAT, Relay-VM, DyNet / DyNet++, eager, Cortex) and formats result
tables in the layout of the paper's tables.

Two scales are supported:

* ``reduced`` (default) — small hidden sizes and batch sizes so that the
  whole table/figure suite regenerates in minutes on a laptop CPU.  This is
  what the pytest benchmarks use.
* ``paper``   — the paper's hidden sizes (§7.1) and batch sizes {8, 64}.
  Slower, intended for manual runs of the ``repro.experiments`` modules.

Absolute numbers are not expected to match the paper (the device is an
analytical simulator and the host is Python); the comparisons of interest
are the *relative* ones: who wins, by roughly what factor, and where the
crossovers are.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Any, Callable, List, Optional, Sequence, Tuple


from ..baselines import (
    CortexModel,
    DyNetImprovements,
    compile_dynet,
    compile_eager,
)
from ..compiler.options import CompilerOptions
from ..core.api import compile_model
from ..data.sequences import random_sequences
from ..data.trees import random_treebank
from ..models import MODEL_MODULES
from ..runtime.executor import RunStats


@dataclass(frozen=True)
class ExperimentScale:
    """Workload scale used by the experiment drivers."""

    name: str
    #: maps the paper's size names to the size names used for building models
    size_names: Tuple[str, ...] = ("small", "large")
    batch_sizes: Tuple[int, ...] = (8, 64)
    #: override of model sizes (e.g. "test") for the reduced scale
    size_override: Optional[str] = None
    seed: int = 0


REDUCED = ExperimentScale(name="reduced", batch_sizes=(4, 16), size_override="test")
PAPER = ExperimentScale(name="paper", batch_sizes=(8, 64))


def current_scale() -> ExperimentScale:
    """Scale selected via the ``REPRO_SCALE`` environment variable."""
    return PAPER if os.environ.get("REPRO_SCALE", "reduced") == "paper" else REDUCED


def resolve_size_name(scale: ExperimentScale, size_name: str) -> str:
    return scale.size_override or size_name


@lru_cache(maxsize=64)
def build_model(model_name: str, size_name: str, seed: int = 0):
    """Build (and cache) one model's IR module + parameters + size config."""
    module = MODEL_MODULES[model_name]
    mod, params, size = module.build_for(size_name, seed=seed)
    return mod, params, size


def make_instances(model_name: str, mod, size, batch_size: int, seed: int = 0) -> List[Any]:
    """Generate a mini-batch of instances for ``model_name``."""
    return MODEL_MODULES[model_name].make_batch(mod, size, batch_size, seed=seed)


def raw_inputs_for_cortex(model_name: str, size, batch_size: int, seed: int = 0):
    """Cortex consumes the raw data structures rather than ADT values."""
    if model_name == "treelstm":
        return random_treebank(batch_size, size.embed, seed=seed)
    if model_name == "mvrnn":
        mod, _, _ = build_model("mvrnn", size.name if size.name != "test" else "test", 0)
        trees = random_treebank(batch_size, size.hidden, seed=seed)
        return [MODEL_MODULES["mvrnn"].instance_input(mod, t, seed=seed + i) for i, t in enumerate(trees)]
    if model_name == "birnn":
        return random_sequences(batch_size, size.embed, seed=seed)
    raise ValueError(f"Cortex does not support {model_name}")


# ---------------------------------------------------------------------------
# Backend runners (each returns RunStats)
# ---------------------------------------------------------------------------


def best_stats(run_once: Callable[[], RunStats], repeats: Optional[int] = None) -> RunStats:
    """Measure ``run_once`` up to ``repeats`` times and keep the
    lowest-latency result.

    Host time is real wall-clock time, so on a busy machine a one-off
    scheduler preemption can inflate a single measurement several-fold;
    best-of-N is the standard benchmark hygiene against that.  ``repeats``
    defaults to the ``REPRO_BEST_OF`` environment variable (itself defaulting
    to 1, i.e. single-run).
    """
    n = repeats if repeats is not None else int(os.environ.get("REPRO_BEST_OF", "1"))
    best: Optional[RunStats] = None
    for _ in range(max(1, n)):
        stats = run_once()
        if best is None or stats.latency_ms < best.latency_ms:
            best = stats
    return best


def run_acrobat(
    model_name: str,
    size_name: str,
    batch_size: int,
    options: Optional[CompilerOptions] = None,
    seed: int = 0,
    scheduler: Optional[str] = None,
    repeats: Optional[int] = None,
) -> RunStats:
    """Run the ACROBAT backend.

    ``scheduler`` selects the runtime scheduling policy by registry name
    (e.g. ``"inline_depth"``, ``"dynamic_depth"``, ``"agenda"``,
    ``"nobatch"``); the default derives from the compiler options.
    ``repeats`` takes the best of N measurements (see :func:`best_stats`).
    """
    mod, params, size = build_model(model_name, size_name, seed)
    instances = make_instances(model_name, mod, size, batch_size, seed)
    opts = options or CompilerOptions()
    if scheduler is not None:
        opts = replace(opts, scheduler=scheduler)
    compiled = compile_model(mod, params, opts)
    return best_stats(lambda: compiled.run(instances)[1], repeats)


def run_vm(
    model_name: str,
    size_name: str,
    batch_size: int,
    seed: int = 0,
    repeats: Optional[int] = None,
) -> RunStats:
    mod, params, size = build_model(model_name, size_name, seed)
    instances = make_instances(model_name, mod, size, batch_size, seed)
    vm = compile_model(mod, params, CompilerOptions(aot=False))
    return best_stats(lambda: vm.run(instances)[1], repeats)


def run_dynet(
    model_name: str,
    size_name: str,
    batch_size: int,
    improvements: Optional[DyNetImprovements] = None,
    best_of_schedulers: bool = True,
    seed: int = 0,
    repeats: Optional[int] = None,
) -> RunStats:
    mod, params, size = build_model(model_name, size_name, seed)
    instances = make_instances(model_name, mod, size, batch_size, seed)
    best: Optional[RunStats] = None
    kinds = ("depth", "agenda") if best_of_schedulers else ("agenda",)
    for kind in kinds:
        model = compile_dynet(mod, params, improvements, scheduler_kind=kind)
        stats = best_stats(lambda: model.run(instances)[1], repeats)
        if best is None or stats.latency_ms < best.latency_ms:
            best = stats
    return best


def run_eager(
    model_name: str,
    size_name: str,
    batch_size: int,
    seed: int = 0,
    repeats: Optional[int] = None,
) -> RunStats:
    mod, params, size = build_model(model_name, size_name, seed)
    instances = make_instances(model_name, mod, size, batch_size, seed)
    model = compile_eager(mod, params)
    return best_stats(lambda: model.run(instances)[1], repeats)


def run_cortex(
    model_name: str,
    size_name: str,
    batch_size: int,
    seed: int = 0,
    repeats: Optional[int] = None,
) -> RunStats:
    _, params, size = build_model(model_name, size_name, seed)
    raw = raw_inputs_for_cortex(model_name, size, batch_size, seed)
    model = CortexModel(model_name, params)
    return best_stats(lambda: model.run(raw)[1], repeats)


# ---------------------------------------------------------------------------
# Table formatting
# ---------------------------------------------------------------------------


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render a plain-text table (fixed-width columns)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def save_result(name: str, text: str) -> str:
    """Write a result table under ``benchmarks/results`` (and return the path)."""
    out_dir = os.environ.get("REPRO_RESULTS_DIR", os.path.join(os.getcwd(), "benchmarks", "results"))
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return path
