"""Experiment drivers that regenerate every table and figure of the paper's
evaluation (§7).  Each module exposes ``run()`` returning (headers, rows) and
``main()`` printing the formatted table; they can also be run directly, e.g.
``python -m repro.experiments.table5``.

Set ``REPRO_SCALE=paper`` to use the paper's model sizes and batch sizes
(slower); the default ``reduced`` scale regenerates everything in minutes.
"""

from . import (
    continuous,
    figure5,
    figure6,
    generation,
    multiloop,
    overlap,
    pipeline,
    serving,
    sharding,
    specialization,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from .harness import (
    PAPER,
    REDUCED,
    ExperimentScale,
    current_scale,
    format_table,
    run_acrobat,
    run_cortex,
    run_dynet,
    run_eager,
    run_vm,
    save_result,
)

ALL_EXPERIMENTS = {
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
    "table9": table9,
    "figure5": figure5,
    "figure6": figure6,
    "serving": serving,
    "sharding": sharding,
    "pipeline": pipeline,
    "continuous": continuous,
    "specialization": specialization,
    "overlap": overlap,
    "generation": generation,
    "multiloop": multiloop,
}

__all__ = [
    "table4", "table5", "table6", "table7", "table8", "table9",
    "figure5", "figure6", "serving", "sharding", "pipeline", "continuous",
    "specialization", "overlap", "generation", "multiloop",
    "ALL_EXPERIMENTS",
    "ExperimentScale", "REDUCED", "PAPER", "current_scale",
    "run_acrobat", "run_dynet", "run_eager", "run_vm", "run_cortex",
    "format_table", "save_result",
]
