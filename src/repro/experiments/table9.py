"""Table 9: benefit of PGO-derived operator priorities in auto-scheduling.

NestedRNN (small, batch 8 at paper scale): sweep the total auto-scheduling
trial budget and compare end-to-end latency when the budget is split
uniformly across kernels (static estimate) vs proportionally to profiled
invocation counts (PGO).  Because the inner RNN's kernels execute an order
of magnitude more often than the outer GRU's, PGO reaches a good schedule
for the kernels that matter with a much smaller budget — the gap closes as
the budget grows, as in the paper.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.api import compile_model
from ..compiler.options import CompilerOptions
from ..kernels.autoscheduler import auto_schedule
from .harness import (
    ExperimentScale,
    best_stats,
    build_model,
    current_scale,
    format_table,
    make_instances,
    resolve_size_name,
)

HEADERS = ("trials", "latency_no_pgo_ms", "latency_pgo_ms", "pgo_benefit")
DEFAULT_BUDGETS = (100, 250, 500, 750, 1000)


def run(
    scale: ExperimentScale | None = None,
    budgets: Tuple[int, ...] = DEFAULT_BUDGETS,
    batch_size: int | None = None,
) -> Tuple[Tuple[str, ...], List[List]]:
    scale = scale or current_scale()
    size_name = resolve_size_name(scale, "small")
    batch = batch_size or scale.batch_sizes[0]
    mod, params, size = build_model("nestedrnn", size_name, scale.seed)
    instances = make_instances("nestedrnn", mod, size, batch, scale.seed)

    rows: List[List] = []
    for budget in budgets:
        latencies = {}
        for use_pgo in (False, True):
            compiled = compile_model(mod, params, CompilerOptions())
            auto_schedule(
                compiled,
                total_trials=budget,
                use_pgo=use_pgo,
                sample_instances=instances if use_pgo else None,
                seed=scale.seed,
            )
            # best-of-N measurement (REPRO_BEST_OF): latency is real host
            # wall-clock plus simulated device time, so a one-off scheduler
            # preemption would otherwise distort the PGO comparison
            stats = best_stats(lambda: compiled.run(instances)[1])
            latencies[use_pgo] = stats.latency_ms
        rows.append(
            [budget, latencies[False], latencies[True], latencies[False] / max(latencies[True], 1e-9)]
        )
    return HEADERS, rows


def main() -> str:
    headers, rows = run()
    text = format_table(
        headers, rows, title="Table 9: auto-scheduling with and without PGO priorities (NestedRNN)"
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
