"""Overlapped host pipeline benchmark: prepare round N+1 while round N runs.

The continuous-batching benchmark (:mod:`repro.experiments.continuous`)
measures who drives the intake; this one measures **when the host works**.
The same bursty open-loop trace is replayed twice per model/flush-policy
pair on one :class:`~repro.serve.loop.ServeLoop`:

* ``serial`` — every flush pays its full host share (DFG bookkeeping,
  scheduling, placement, memory planning, dispatch) serially before the
  round's device share launches, exactly as before the pipeline existed;
* ``overlap`` — the loop's prepare pipeline (``prepare=True``)
  speculatively builds the predicted next round — schedule, placement,
  memory plan — while the previous round's device share is still in
  flight, so an adopted flush only pays the unpreparable remainder
  (:attr:`~repro.serve.session.InferenceSession.prepare_share` of the
  modelled host cost comes off the serial path, capped by the actual
  speculation window).

The regime is deliberately **host-bound**: a steep deterministic host-cost
model (``HOST_MODEL`` ms per round + per request) over the compute-starved
edge-class device spec, with bursty traffic past the serial loop's
saturation point — the configuration where ACROBAT's Python-side round
construction is the bottleneck and hiding it behind device time pays
directly in throughput.

Both modes run **deterministically**: measured host wall time is excluded,
speculation resolves at fixed event-loop points, and a wrong speculation
costs only modelled host work — so every number is a pure function of the
trace and the cost models.  The ``deterministic`` column replays each
configuration twice and checks bit-for-bit equality (latencies *and*
outputs); ``matches_ref`` checks both modes against the eager reference.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..compiler.options import CompilerOptions
from ..core.api import compile_model, reference_run
from ..ir.adt import ADTValue
from ..runtime.device import DeviceSimulator, GPUSpec
from ..serve.clock import SimulatedClock
from ..serve.traffic import TrafficReport, bursty_arrivals, replay_continuous
from ..utils import values_allclose
from .harness import (
    ExperimentScale,
    build_model,
    current_scale,
    format_table,
    make_instances,
    save_result,
)

HEADERS = (
    "model",
    "policy",
    "serial_rps",
    "overlap_rps",
    "speedup",
    "p50_serial_ms",
    "p50_overlap_ms",
    "mean_batch",
    "hidden_ms",
    "spec_hits",
    "spec_aborts",
    "matches_ref",
    "deterministic",
)

MODELS = ("treelstm", "birnn")

#: flush-policy pairs replayed in both modes; the adaptive rows are the
#: host-bound throughput headline (benchmarks/test_overlap.py gates on
#: them): the policy's round cap makes every flush take the oldest-32
#: prefix, so later arrivals append *behind* the speculatively prepared
#: round and every warm round adopts it — rounds chain at device
#: completion events with a full device flight as the prepare window.
#: The deadline rows double as the uncapped ablation: flush-takes-all
#: rounds change composition with every arrival, so speculation rarely
#: survives to adoption and the pipeline buys ~nothing — the contrast
#: that motivates the round cap.
POLICIES: Tuple[Tuple[str, str, Dict], ...] = (
    ("adaptive", "adaptive", {"max_batch": 32, "max_wait_ms": 300.0}),
    ("deadline(8ms)", "deadline", {"ms": 8.0}),
)

SIZE_NAME = "small"

#: mid-tier device spec for the host-bound regime: fast enough that the
#: host cost model dominates each round (unlike the sharding sweep's
#: compute-starved edge spec, whose ~100ms rounds would drown any host-side
#: win), slow enough that the device share — the window speculation hides
#: host work behind — is a solid fraction of the round
OVERLAP_SPEC = GPUSpec(
    name="simulated-midrange",
    launch_overhead_us=5.0,
    api_overhead_us=4.0,
    mem_bandwidth_gbps=10.0,
    peak_gflops=100.0,
    pcie_bandwidth_gbps=8.0,
    memcpy_overhead_us=7.0,
    saturation_flops=2.0e5,
    min_utilization=0.05,
)

#: bursty open-loop traffic past the *overlapped* loop's saturation point,
#: so the measured throughput is each mode's service capacity, not the
#: trace's arrival rate — hiding host work then shows up directly as
#: throughput
ARRIVAL_RATE = {"reduced": 2600.0, "paper": 2600.0}
NUM_REQUESTS = {"reduced": 192, "paper": 384}
BURST = 8

#: deterministic host-cost model, identical for both modes:
#: (per_round_ms, per_request_ms) of serial host work per flush.  Steeper
#: than the continuous benchmark's model — this table measures the
#: host-bound regime, where round construction rivals device execution
HOST_MODEL = (3.0, 0.5)


def _bitwise_equal(a, b) -> bool:
    """Exact (bit-for-bit) equality over nested outputs (ADT values, tuples,
    lists, arrays — the same structures :func:`values_allclose` walks)."""
    if isinstance(a, ADTValue) or isinstance(b, ADTValue):
        return (
            isinstance(a, ADTValue)
            and isinstance(b, ADTValue)
            and a.constructor.name == b.constructor.name
            and len(a.fields) == len(b.fields)
            and all(_bitwise_equal(x, y) for x, y in zip(a.fields, b.fields))
        )
    if isinstance(a, (list, tuple)) or isinstance(b, (list, tuple)):
        return (
            isinstance(a, (list, tuple))
            and isinstance(b, (list, tuple))
            and len(a) == len(b)
            and all(_bitwise_equal(x, y) for x, y in zip(a, b))
        )
    return bool(np.array_equal(np.asarray(a), np.asarray(b)))


def _replay(
    compiled, requests, arrivals, policy: str, policy_args: Dict, prepare: bool
) -> Tuple[TrafficReport, object]:
    session = compiled.serve(
        policy,
        clock=SimulatedClock(),
        device=DeviceSimulator(spec=OVERLAP_SPEC),
        **policy_args,
    )
    report = replay_continuous(
        session,
        requests,
        arrivals,
        deterministic=True,
        host_model=HOST_MODEL,
        prepare=prepare,
    )
    return report, session


def run(
    scale: Optional[ExperimentScale] = None, models: Tuple[str, ...] = MODELS
) -> Tuple[Tuple[str, ...], List[List]]:
    """The overlap table (one row per model x policy, serial vs overlap)."""
    scale = scale or current_scale()
    n = NUM_REQUESTS.get(scale.name, 64)
    rate = ARRIVAL_RATE.get(scale.name, 700.0)

    rows: List[List] = []
    for model_name in models:
        mod, params, size = build_model(model_name, SIZE_NAME, scale.seed)
        requests = make_instances(model_name, mod, size, n, seed=scale.seed + 6)
        reference = reference_run(mod, params, requests)
        compiled = compile_model(mod, params, CompilerOptions())
        arrivals = bursty_arrivals(rate, n, burst=BURST, seed=scale.seed + 7)

        for label, policy, policy_args in POLICIES:
            serial, _ = _replay(compiled, requests, arrivals, policy, policy_args, False)
            overlap, session = _replay(
                compiled, requests, arrivals, policy, policy_args, True
            )
            # bit-for-bit determinism: the same trace replayed again, in
            # both modes, must reproduce latencies and outputs exactly —
            # speculation aborts and all
            serial2, _ = _replay(compiled, requests, arrivals, policy, policy_args, False)
            overlap2, _ = _replay(
                compiled, requests, arrivals, policy, policy_args, True
            )
            deterministic = (
                serial.latencies_ms == serial2.latencies_ms
                and overlap.latencies_ms == overlap2.latencies_ms
                and _bitwise_equal(serial.outputs, serial2.outputs)
                and _bitwise_equal(overlap.outputs, overlap2.outputs)
            )
            ok = all(
                values_allclose(a, b) for a, b in zip(reference, serial.outputs)
            ) and all(
                values_allclose(a, b) for a, b in zip(reference, overlap.outputs)
            )
            rows.append(
                [
                    model_name,
                    label,
                    serial.throughput_rps,
                    overlap.throughput_rps,
                    overlap.throughput_rps / serial.throughput_rps,
                    serial.p50_ms,
                    overlap.p50_ms,
                    overlap.mean_batch,
                    session.prepare_hidden_ms,
                    session.speculation_hits,
                    session.speculation_aborts,
                    "yes" if ok else "NO",
                    "yes" if deterministic else "NO",
                ]
            )
    return HEADERS, rows


def format_report(headers: Tuple[str, ...], rows: List[List]) -> str:
    return format_table(
        headers,
        rows,
        title=(
            "Overlapped host pipeline: serial vs speculative round "
            f"preparation ({SIZE_NAME}-size models on a {OVERLAP_SPEC.name} "
            f"device; deterministic simulated time, host model "
            f"{HOST_MODEL[0]}ms/round + {HOST_MODEL[1]}ms/request, traffic "
            "past serial saturation)"
        ),
    )


def main(argv: Optional[List[str]] = None) -> str:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.overlap",
        description="Host-bound serving throughput with the overlapped "
        "prepare pipeline off vs on.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: one model, asserts overlap engaged + bitwise "
        "identity, no result file",
    )
    args = parser.parse_args(list(argv) if argv is not None else [])
    if args.quick:
        headers, rows = run(models=("treelstm",))
        text = format_report(headers, rows)
        print(text)
        # the smoke gate: the pipeline engaged, stayed reference-identical,
        # and replays bit-for-bit.  The throughput floor is safe to assert
        # even on a shared CI box — the replay runs on simulated time, so
        # the speedup is a pure function of the trace and the cost models.
        for row in rows:
            assert row[-2] == "yes", f"{row[0]}/{row[1]}: outputs diverged"
            assert row[-1] == "yes", f"{row[0]}/{row[1]}: replay not bitwise"
        assert any(row[9] > 0 for row in rows), "no speculation hit"
        for row in rows:
            if row[1] == "adaptive":
                assert row[4] >= 1.2, f"host-bound speedup regressed: {row[4]}"
        return text
    headers, rows = run()
    text = format_report(headers, rows)
    print(text)
    save_result("overlap", text)
    return text


if __name__ == "__main__":
    import sys

    main(sys.argv[1:])
