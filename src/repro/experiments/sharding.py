"""Sharding benchmark: serving throughput vs device count per placement.

The serving benchmark (:mod:`repro.experiments.serving`) measures *when* to
flush; this one measures *where* the flushed round executes.  Open-loop
Poisson traffic is replayed against a TreeLSTM serving session backed by a
:class:`~repro.devices.group.DeviceGroup` of 1/2/4 simulated devices under
every built-in placement policy:

* ``single`` — everything on device 0 (the no-sharding baseline: extra
  devices sit idle, so throughput must not move);
* ``round_robin`` — request-level sharding (instance ``i`` on device
  ``i % N``);
* ``data_parallel`` — per-batch splitting driven by the device cost model
  (learning per-block work from observed launches).

The sweep runs in a *device-bound* regime: paper-"small" model sizes on a
deliberately compute-starved edge-class accelerator spec, so the serving
bottleneck is simulated device time rather than the Python host overhead of
this reproduction — device-count scaling is what is being measured, and it
only exists where the device is the bottleneck (a datacenter GPU at toy
sizes is launch-overhead-bound, and sharding cannot shard launch overhead).
Cross-device operand traffic is priced over an NVLink-class interconnect.

Reported per configuration: throughput, p50/p99 end-to-end latency on the
simulated clock, mean batch size, kernel launches, peer transfers, the
group's busy-time balance, and the throughput speedup vs the same policy's
single-device run.  Every configuration's outputs are checked against the
eager reference, and every flush's per-device counters are checked to sum
to the group totals — sharding must change where work runs and what
transfers cost, never results or accounting identities.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler.options import CompilerOptions
from ..core.api import compile_model, reference_run
from ..devices.group import DeviceGroup
from ..models import MODEL_MODULES
from ..runtime.device import GPUSpec
from ..serve.clock import SimulatedClock
from ..serve.traffic import TrafficReport, poisson_arrivals, replay
from ..utils import values_allclose
from .harness import (
    ExperimentScale,
    build_model,
    current_scale,
    format_table,
    make_instances,
    save_result,
)

HEADERS = (
    "model",
    "placement",
    "devices",
    "throughput_rps",
    "speedup",
    "p50_ms",
    "p99_ms",
    "mean_batch",
    "launches",
    "peer_transfers",
    "balance",
    "active_devices",
    "matches_ref",
    "counters_sum",
)

PLACEMENTS = ("single", "round_robin", "data_parallel")
#: the full placement registry accepted by --placements; the default sweep
#: keeps the original three, the depth-staged policies have their own sweep
#: (:mod:`repro.experiments.pipeline`) but can be pulled in here ad hoc
PLACEMENT_CHOICES = PLACEMENTS + ("pipeline", "tensor_parallel")
DEVICE_COUNTS = (1, 2, 4)

MODEL = "treelstm"
#: the sweep uses the paper's "small" model size even at reduced scale:
#: device-count scaling needs real per-instance device work to shard
SIZE_NAME = "small"

#: compute-starved edge-class accelerator: ~4 GFLOPS peak with modest
#: bandwidth, so a flushed round's simulated device time dominates the
#: host-side Python overhead by an order of magnitude and the device — not
#: this reproduction's Python host — is the serving bottleneck (which also
#: keeps the measured speedups stable on busy CI hosts)
EDGE_SPEC = GPUSpec(
    name="simulated-edge",
    launch_overhead_us=5.0,
    api_overhead_us=4.0,
    mem_bandwidth_gbps=4.0,
    peak_gflops=4.0,
    pcie_bandwidth_gbps=4.0,
    memcpy_overhead_us=7.0,
    saturation_flops=5.0e4,
    min_utilization=0.05,
)

INTERCONNECT = "nvlink"

#: open-loop arrival rate (requests/second on the simulated clock), set
#: well above the single-device service rate so the sweep measures serving
#: capacity (open-loop saturation), and the per-scale trace length
ARRIVAL_RATE = {"reduced": 1600.0, "paper": 1600.0}
NUM_REQUESTS = {"reduced": 48, "paper": 96}
FLUSH_SIZE = 16


def _counters_sum_ok(history) -> bool:
    """Every flush's per-device counters must sum to the group totals."""
    for stats in history:
        if not stats.per_device:
            continue
        total = sum(d.get("total_device_us", 0.0) for d in stats.per_device)
        launches = sum(d.get("num_kernel_launches", 0) for d in stats.per_device)
        if abs(total - stats.device.get("total_device_us", 0.0)) > 1e-6:
            return False
        if launches != stats.device.get("num_kernel_launches", 0):
            return False
    return True


def _busy_balance(history) -> Tuple[float, int]:
    """Busy-time balance over the *participating* devices plus how many
    participated, accumulated across the replay's flushes.

    Balance is min/max cumulative busy time over members that did any work
    (1.0 = the members sharing the work share it perfectly).  Members a
    placement left idle are reported through the active count rather than
    by zeroing the ratio — ``single`` on a 4-group is one perfectly
    balanced active device, not a 0.00-balance group.
    """
    busy: Dict[int, float] = {}
    for stats in history:
        for d in stats.per_device:
            idx = int(d.get("device", 0))
            busy[idx] = busy.get(idx, 0.0) + d.get("total_device_us", 0.0)
    if not busy:
        # single-simulator session: no per-device breakdown, one device busy
        return 1.0, 1
    active = [b for b in busy.values() if b > 0.0]
    if len(active) <= 1:
        return 1.0, len(active)
    return min(active) / max(active), len(active)


def _replay_config(
    compiled, requests, rate: float, seed: int, placement: str, devices: int
) -> Tuple[TrafficReport, object]:
    group = DeviceGroup(devices, spec=EDGE_SPEC, interconnect=INTERCONNECT)
    session = compiled.serve(
        "size",
        n=FLUSH_SIZE,
        clock=SimulatedClock(),
        devices=group,
        placement=placement,
    )
    arrivals = poisson_arrivals(rate, len(requests), seed=seed)
    report = replay(session, requests, arrivals)
    return report, session


def run(
    scale: Optional[ExperimentScale] = None,
    device_counts: Sequence[int] = DEVICE_COUNTS,
    placements: Sequence[str] = PLACEMENTS,
    models: Sequence[str] = (MODEL,),
) -> Tuple[Tuple[str, ...], List[List]]:
    """The device-scaling table (one row per model x placement x device
    count).

    Device counts are swept in ascending order and each placement's
    ``speedup`` column is relative to its own run at the *smallest* swept
    count (1 in the default sweep).
    """
    scale = scale or current_scale()
    n = NUM_REQUESTS.get(scale.name, 48)
    rate = ARRIVAL_RATE.get(scale.name, 1600.0)
    device_counts = tuple(sorted(set(device_counts)))

    rows: List[List] = []
    for model in models:
        mod, params, size = build_model(model, SIZE_NAME, scale.seed)
        requests = make_instances(model, mod, size, n, seed=scale.seed + 3)
        reference = reference_run(mod, params, requests)
        compiled = compile_model(mod, params, CompilerOptions())

        for placement in placements:
            base_throughput: Optional[float] = None
            for devices in device_counts:
                report, session = _replay_config(
                    compiled, requests, rate, scale.seed, placement, devices
                )
                ok = all(
                    values_allclose(a, b)
                    for a, b in zip(reference, report.outputs)
                )
                peer = sum(
                    s.device.get("num_peer_transfers", 0)
                    for s in session.history
                )
                if base_throughput is None:
                    base_throughput = report.throughput_rps
                balance, active = _busy_balance(session.history)
                rows.append(
                    [
                        model,
                        placement,
                        devices,
                        report.throughput_rps,
                        report.throughput_rps / base_throughput,
                        report.p50_ms,
                        report.p99_ms,
                        report.mean_batch,
                        report.kernel_launches,
                        peer,
                        balance,
                        active,
                        "yes" if ok else "NO",
                        "yes" if _counters_sum_ok(session.history) else "NO",
                    ]
                )
    return HEADERS, rows


def format_report(headers: Tuple[str, ...], rows: List[List]) -> str:
    return format_table(
        headers,
        rows,
        title=(
            "Sharding: open-loop Poisson traffic vs device count per placement "
            f"policy ({SIZE_NAME}-size models on a {EDGE_SPEC.name} group, "
            f"{INTERCONNECT} interconnect, size({FLUSH_SIZE}) flushes; "
            "speedup is each placement's throughput over its own run at the "
            "smallest swept device count)"
        ),
    )


def main(argv: Optional[Sequence[str]] = None) -> str:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.sharding",
        description="Device-scaling serving sweep (placement-policy matrix).",
    )
    parser.add_argument(
        "--devices",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="device counts to sweep (default: 1 2 4); the 1-device "
        "baseline is always included so the speedup column stays "
        "comparable across invocations — --devices 2 sweeps {1, 2}",
    )
    parser.add_argument(
        "--placements",
        nargs="+",
        default=None,
        choices=PLACEMENT_CHOICES,
        help=f"placement policies to sweep (default: {' '.join(PLACEMENTS)})",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=None,
        choices=sorted(MODEL_MODULES),
        metavar="MODEL",
        help="registered model names to sweep (default: "
        f"{MODEL}; choices: {' '.join(sorted(MODEL_MODULES))})",
    )
    args = parser.parse_args(list(argv) if argv is not None else [])
    counts: Sequence[int] = DEVICE_COUNTS
    if args.devices is not None:
        # the 1-device baseline is always swept so "speedup" means the same
        # thing however the counts are given ("--devices 2" = smoke {1, 2})
        counts = tuple(sorted({1, *args.devices}))
    headers, rows = run(
        device_counts=counts,
        placements=args.placements or PLACEMENTS,
        models=tuple(args.models) if args.models else (MODEL,),
    )
    text = format_report(headers, rows)
    print(text)
    save_result("sharding", text)
    return text


if __name__ == "__main__":
    import sys

    main(sys.argv[1:])
