"""Figure 5: speedup over eager (PyTorch-style) execution vs batch size.

TreeLSTM, MV-RNN and BiRNN, small and large sizes, batch sizes sweeping up
to 128 at paper scale.  Expected shape: speedups grow with batch size (more
batch parallelism for ACROBAT to exploit, none for the eager baseline) and
are smaller for the large model size, where individual kernels already
saturate the device.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .harness import (
    ExperimentScale,
    current_scale,
    format_table,
    resolve_size_name,
    run_acrobat,
    run_eager,
)

MODELS = ("treelstm", "mvrnn", "birnn")
HEADERS = ("model", "size", "batch", "eager_ms", "acrobat_ms", "speedup")
PAPER_BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)
REDUCED_BATCHES = (1, 2, 4, 8, 16)


def run(
    scale: ExperimentScale | None = None, batches: Sequence[int] | None = None
) -> Tuple[Tuple[str, ...], List[List]]:
    scale = scale or current_scale()
    if batches is None:
        batches = REDUCED_BATCHES if scale.name == "reduced" else PAPER_BATCHES
    rows: List[List] = []
    for model in MODELS:
        for size_name in scale.size_names:
            build_size = resolve_size_name(scale, size_name)
            for batch in batches:
                eager_stats = run_eager(model, build_size, batch, seed=scale.seed)
                acro_stats = run_acrobat(model, build_size, batch, seed=scale.seed)
                rows.append(
                    [
                        model,
                        size_name,
                        batch,
                        eager_stats.latency_ms,
                        acro_stats.latency_ms,
                        eager_stats.latency_ms / max(acro_stats.latency_ms, 1e-9),
                    ]
                )
    return HEADERS, rows


def main() -> str:
    headers, rows = run()
    text = format_table(
        headers, rows, title="Figure 5: speedup over eager (no auto-batching) execution vs batch size"
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
