"""Autoregressive decode benchmark: per-request vs continuously batched.

Generation stresses exactly the regime ACROBAT's cross-request batching is
for: every live sequence re-enters the round former once per token, so a
cohort of live sequences offers a fresh batching opportunity *every step*.
This table drives the same open-loop prompt trace through
:class:`repro.generate.GenerationSession` in three modes:

* ``per_request`` — a ``size(1)`` flush policy: every decode step is its
  own round, serialized on the device (the no-cross-request baseline —
  what a naive serving stack does to autoregressive traffic);
* ``continuous`` — the ``adaptive`` policy under the generation driver's
  iteration-level scheduling: decode steps of all live sequences (and any
  fresh prefills) land in one round per step cohort;
* ``continuous+prepare`` — the same, with the overlapped host pipeline
  speculatively building the next decode round's schedule/placement/plan
  while the previous round's device share drains (the round's *structure*
  is known before its token values are).

Reported per model (tanh-RNN and GRU decoder cells): time-to-first-step
percentiles (arrival → first emitted token), inter-step p99 (the decode
SLO), token throughput, mean round size and kernel launches per token.
Every row is **bitwise reference-identical** — each sequence's token
trajectory equals the eager unbatched :func:`repro.generate.reference_generate`
loop exactly — and **replay-deterministic**: the same trace re-run must
reproduce every token and every timestamp bit-for-bit on the simulated
clock.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..compiler.options import CompilerOptions
from ..core.api import compile_model
from ..generate import GenerationRequest, GenerationSession, reference_generate
from ..models import MODEL_MODULES
from ..serve.clock import SimulatedClock
from .harness import (
    ExperimentScale,
    build_model,
    current_scale,
    format_table,
    save_result,
)

HEADERS = (
    "model",
    "mode",
    "ttfs_p50_ms",
    "ttfs_p99_ms",
    "inter_p99_ms",
    "tok_per_s",
    "mean_batch",
    "kern_per_tok",
    "hidden_ms",
    "matches_ref",
    "deterministic",
)

MODELS = ("declm", "declm_gru")

MODES: Tuple[Tuple[str, str, Dict, bool], ...] = (
    ("per_request", "size", {"n": 1}, False),
    ("continuous", "adaptive", {}, False),
    ("continuous+prepare", "adaptive", {}, True),
)

SIZE_NAME = "small"

NUM_SEQUENCES = {"reduced": 16, "paper": 32}
MAX_NEW_TOKENS = {"reduced": 12, "paper": 24}

#: mean inter-arrival gap of the prompt trace (seconds): short enough that
#: many sequences decode concurrently — the cohort continuous batching rides
ARRIVAL_GAP_S = 0.0004

#: deterministic host cost charged per flush: (per_round_ms, per_request_ms)
HOST_MODEL = (0.2, 0.05)


def _make_requests(
    vocab: int, n: int, max_new: int, seed: int
) -> List[GenerationRequest]:
    """Deterministic open-loop prompt trace: exponential inter-arrival
    gaps, random prompt lengths 1-4, random prompt tokens."""
    rng = np.random.default_rng(seed)
    t = 0.0
    out = []
    for _ in range(n):
        t += float(rng.exponential(ARRIVAL_GAP_S))
        length = int(rng.integers(1, 5))
        prompt = [int(tok) for tok in rng.integers(0, vocab, length)]
        out.append(
            GenerationRequest(prompt, max_new_tokens=max_new, arrival=t)
        )
    return out


def _snapshot(handles) -> List[Tuple]:
    """Everything a replay must reproduce bit-for-bit: tokens and the full
    per-sequence timing."""
    return [
        (
            tuple(h.tokens),
            h.stats.first_token_at,
            h.stats.finished_at,
            tuple(h.stats.inter_step_ms),
            h.stats.status,
        )
        for h in handles
    ]


def _generate(compiled, model_module, size, requests_spec, policy, policy_args, prepare):
    session = compiled.serve(policy, clock=SimulatedClock(), **policy_args)
    gen = GenerationSession(session, model_module, size)
    # fresh GenerationRequest objects per run: handles and stream state are
    # single-use
    requests = [
        GenerationRequest(list(r.prompt), max_new_tokens=r.max_new_tokens, arrival=r.arrival)
        for r in requests_spec
    ]
    handles = gen.generate(requests, host_model=HOST_MODEL, prepare=prepare)
    return handles, session, gen


def run(
    scale: Optional[ExperimentScale] = None, models: Tuple[str, ...] = MODELS
) -> Tuple[Tuple[str, ...], List[List]]:
    """The generation table (one row per decoder cell x serving mode)."""
    scale = scale or current_scale()
    n = NUM_SEQUENCES.get(scale.name, 8)
    max_new = MAX_NEW_TOKENS.get(scale.name, 8)

    rows: List[List] = []
    for model_name in models:
        module = MODEL_MODULES[model_name]
        mod, params, size = build_model(model_name, SIZE_NAME, scale.seed)
        requests = _make_requests(size.classes, n, max_new, scale.seed + 11)
        reference = [
            reference_generate(
                mod, params, module, size, r.prompt, r.max_new_tokens
            )
            for r in requests
        ]
        compiled = compile_model(mod, params, CompilerOptions())

        for label, policy, policy_args, prepare in MODES:
            handles, session, gen = _generate(
                compiled, module, size, requests, policy, policy_args, prepare
            )
            again, _, _ = _generate(
                compiled, module, size, requests, policy, policy_args, prepare
            )
            deterministic = _snapshot(handles) == _snapshot(again)
            matches = [h.result() for h in handles] == reference

            tokens = sum(len(h.tokens) for h in handles)
            makespan = max(h.stats.finished_at for h in handles) - min(
                r.arrival for r in requests
            )
            ttfs = [h.stats.ttfs_ms for h in handles]
            flushes = session.num_flushes
            rows.append(
                [
                    model_name,
                    label,
                    float(np.percentile(ttfs, 50)),
                    float(np.percentile(ttfs, 99)),
                    gen.metrics.inter_step_p99_ms,
                    tokens / makespan if makespan > 0 else 0.0,
                    session.requests_flushed / flushes if flushes else 0.0,
                    session.total_kernel_calls / max(1, tokens),
                    session.prepare_hidden_ms,
                    "yes" if matches else "NO",
                    "yes" if deterministic else "NO",
                ]
            )
    return HEADERS, rows


def format_report(headers: Tuple[str, ...], rows: List[List]) -> str:
    return format_table(
        headers,
        rows,
        title=(
            "Autoregressive decode: per-request vs continuously batched "
            f"({SIZE_NAME}-size decoder cells; deterministic simulated time, "
            f"host model {HOST_MODEL[0]}ms/round + {HOST_MODEL[1]}ms/request; "
            "every trajectory bitwise-identical to the eager reference loop)"
        ),
    )


def main(argv: Optional[List[str]] = None) -> str:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.generation",
        description="Decode-cohort batching: TTFS and inter-step SLOs for "
        "per-request vs continuous generation.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: one decoder cell, asserts reference identity, "
        "bitwise replay determinism and the continuous TTFS win; no "
        "result file",
    )
    args = parser.parse_args(list(argv) if argv is not None else [])
    if args.quick:
        headers, rows = run(models=("declm",))
        text = format_report(headers, rows)
        print(text)
        by_mode = {row[1]: row for row in rows}
        for row in rows:
            assert row[-2] == "yes", f"{row[0]}/{row[1]}: tokens diverged from reference"
            assert row[-1] == "yes", f"{row[0]}/{row[1]}: replay not bitwise-identical"
        # the headline: batching the decode cohort must beat one-round-per-
        # step on both first-token latency and throughput.  Safe to assert
        # on shared CI — simulated time is a pure function of the trace.
        ttfs_win = by_mode["per_request"][2] / by_mode["continuous"][2]
        assert ttfs_win >= 1.2, f"continuous TTFS win regressed: {ttfs_win:.2f}x"
        tput_win = by_mode["continuous"][5] / by_mode["per_request"][5]
        assert tput_win >= 1.2, f"continuous throughput win regressed: {tput_win:.2f}x"
        assert by_mode["continuous+prepare"][8] > 0, "prepare hid no host time"
        return text
    headers, rows = run()
    text = format_report(headers, rows)
    print(text)
    save_result("generation", text)
    return text


if __name__ == "__main__":
    import sys

    main(sys.argv[1:])
