"""Table 7: how far hand-fixing DyNet's heuristics closes the gap.

For TreeLSTM, MV-RNN and DRNN: stock DyNet (DN), DyNet with the paper's
manual improvements (DN++ — better matmul batching heuristic, batched
argmax/broadcast-mul, constant reuse, manual instance parallelism), and
ACROBAT.  Expected shape: DN++ recovers part of the gap (most of it for
MV-RNN, whose slowdown was purely the matmul heuristic) but ACROBAT stays
ahead thanks to its static optimizations.
"""

from __future__ import annotations

from typing import List, Tuple

from ..baselines import DyNetImprovements
from .harness import (
    ExperimentScale,
    current_scale,
    format_table,
    resolve_size_name,
    run_acrobat,
    run_dynet,
)

MODELS = ("treelstm", "mvrnn", "drnn")
HEADERS = ("model", "size", "batch", "dynet_ms", "dynet_improved_ms", "acrobat_ms")


def run(scale: ExperimentScale | None = None) -> Tuple[Tuple[str, ...], List[List]]:
    scale = scale or current_scale()
    rows: List[List] = []
    for model in MODELS:
        for size_name in scale.size_names:
            build_size = resolve_size_name(scale, size_name)
            for batch in scale.batch_sizes:
                dn = run_dynet(model, build_size, batch, seed=scale.seed)
                dnpp = run_dynet(
                    model,
                    build_size,
                    batch,
                    improvements=DyNetImprovements.improved(),
                    seed=scale.seed,
                )
                ab = run_acrobat(model, build_size, batch, seed=scale.seed)
                rows.append(
                    [model, size_name, batch, dn.latency_ms, dnpp.latency_ms, ab.latency_ms]
                )
    return HEADERS, rows


def main() -> str:
    headers, rows = run()
    text = format_table(headers, rows, title="Table 7: DyNet (DN) vs improved DyNet (DN++) vs ACROBAT (AB), ms")
    print(text)
    return text


if __name__ == "__main__":
    main()
