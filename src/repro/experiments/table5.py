"""Table 5: DyNet vs ACROBAT inference latencies and speedups.

All seven models, both sizes, both batch sizes; DyNet uses the better of its
two scheduling schemes per configuration (as in the paper).  Expected shape:
ACROBAT wins clearly on the control-flow-heavy models (TreeLSTM, MV-RNN,
DRNN, StackRNN), more modestly on Berxit, and is roughly at parity on
BiRNN / NestedRNN at the large size where per-kernel tensor work dominates.
"""

from __future__ import annotations

from typing import List, Tuple

from .harness import (
    ExperimentScale,
    current_scale,
    format_table,
    resolve_size_name,
    run_acrobat,
    run_dynet,
)

MODELS = ("treelstm", "mvrnn", "birnn", "nestedrnn", "drnn", "berxit", "stackrnn")
HEADERS = ("model", "size", "batch", "dynet_ms", "acrobat_ms", "speedup")


def run(
    scale: ExperimentScale | None = None, models: Tuple[str, ...] = MODELS
) -> Tuple[Tuple[str, ...], List[List]]:
    scale = scale or current_scale()
    rows: List[List] = []
    for model in models:
        for size_name in scale.size_names:
            build_size = resolve_size_name(scale, size_name)
            for batch in scale.batch_sizes:
                dynet_stats = run_dynet(model, build_size, batch, seed=scale.seed)
                acrobat_stats = run_acrobat(model, build_size, batch, seed=scale.seed)
                rows.append(
                    [
                        model,
                        size_name,
                        batch,
                        dynet_stats.latency_ms,
                        acrobat_stats.latency_ms,
                        dynet_stats.latency_ms / max(acrobat_stats.latency_ms, 1e-9),
                    ]
                )
    return HEADERS, rows


def geometric_mean_speedup(rows: List[List]) -> float:
    import numpy as np

    speedups = [row[-1] for row in rows]
    return float(np.exp(np.mean(np.log(speedups)))) if speedups else 0.0


def main() -> str:
    headers, rows = run()
    text = format_table(headers, rows, title="Table 5: DyNet vs ACROBAT (inference latency, ms)")
    text += f"\n\nGeometric-mean speedup over DyNet: {geometric_mean_speedup(rows):.2f}x"
    print(text)
    return text


if __name__ == "__main__":
    main()
