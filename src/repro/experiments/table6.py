"""Table 6: where the time goes — runtime activity breakdown.

For TreeLSTM (small) and BiRNN (large) at the largest batch size, reports
the per-activity breakdown for DyNet and ACROBAT: DFG construction,
scheduling, memory copies/gathers, simulated GPU kernel time, number of
kernel calls and CUDA-API time.  Expected shape: ACROBAT's DFG-construction
and scheduling costs are a small fraction of DyNet's, and it launches far
fewer kernels.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..runtime.executor import RunStats
from .harness import ExperimentScale, current_scale, format_table, resolve_size_name, run_acrobat, run_dynet

HEADERS = ("activity", "treelstm_dynet", "treelstm_acrobat", "birnn_dynet", "birnn_acrobat")

ACTIVITIES = (
    "DFG construction (ms)",
    "Scheduling (ms)",
    "Memory planning (ms)",
    "Prepare (pipelined) (ms)",
    "Memory copy time (ms)",
    "Output materialization (ms)",
    "GPU kernel time (ms)",
    "#Kernel calls",
    "#Gather launches",
    "CUDA API time (ms)",
)


def _breakdown(stats: RunStats) -> Dict[str, float]:
    return {
        "DFG construction (ms)": stats.host_ms.get("dfg_construction", 0.0),
        "Scheduling (ms)": stats.host_ms.get("scheduling", 0.0),
        "Memory planning (ms)": stats.host_ms.get("memory_planning", 0.0),
        # host work done ahead of the flush by the overlapped pipeline
        # (schedule+placement+planning of adopted prepared rounds); zero for
        # the one-shot runs this table measures, reported for parity with
        # serving breakdowns
        "Prepare (pipelined) (ms)": stats.host_ms.get("prepare", 0.0),
        "Memory copy time (ms)": (
            stats.device.get("gather_time_us", 0.0) + stats.device.get("memcpy_time_us", 0.0)
        )
        / 1e3,
        "Output materialization (ms)": stats.host_ms.get("materialize", 0.0),
        "GPU kernel time (ms)": (
            stats.device.get("kernel_time_us", 0.0) + stats.device.get("gather_time_us", 0.0)
        )
        / 1e3,
        "#Kernel calls": stats.kernel_calls,
        "#Gather launches": stats.device.get("num_gather_launches", 0),
        "CUDA API time (ms)": stats.api_time_ms + stats.host_ms.get("dispatch", 0.0),
    }


def run(scale: ExperimentScale | None = None) -> Tuple[Tuple[str, ...], List[List]]:
    scale = scale or current_scale()
    batch = scale.batch_sizes[-1]
    configs = [
        ("treelstm", resolve_size_name(scale, scale.size_names[0])),
        ("birnn", resolve_size_name(scale, scale.size_names[-1])),
    ]
    breakdowns = []
    for model, size_name in configs:
        dynet_stats = run_dynet(model, size_name, batch, seed=scale.seed)
        acrobat_stats = run_acrobat(model, size_name, batch, seed=scale.seed)
        breakdowns.append((_breakdown(dynet_stats), _breakdown(acrobat_stats)))

    rows: List[List] = []
    for activity in ACTIVITIES:
        rows.append(
            [
                activity,
                breakdowns[0][0][activity],
                breakdowns[0][1][activity],
                breakdowns[1][0][activity],
                breakdowns[1][1][activity],
            ]
        )
    return HEADERS, rows


def main() -> str:
    headers, rows = run()
    text = format_table(
        headers, rows, title="Table 6: runtime activity breakdown (DyNet vs ACROBAT, largest batch)"
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
