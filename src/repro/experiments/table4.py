"""Table 4: Relay-VM interpretation vs ACROBAT's AOT compilation.

Reproduces the comparison of §7.2 for TreeLSTM, MV-RNN and BiRNN: the same
lazy auto-batching runtime driven either by the tree-walking interpreter
(``aot=False``) or by the AOT-generated program.  Expected shape: AOT is
several times faster, and the gap is largest for the models with the most
control flow per tensor operation.
"""

from __future__ import annotations

from typing import List, Tuple

from .harness import ExperimentScale, current_scale, format_table, resolve_size_name, run_acrobat, run_vm

MODELS = ("treelstm", "mvrnn", "birnn")
HEADERS = ("model", "size", "batch", "vm_ms", "aot_ms", "vm_over_aot")


def run(scale: ExperimentScale | None = None) -> Tuple[Tuple[str, ...], List[List]]:
    scale = scale or current_scale()
    rows: List[List] = []
    for model in MODELS:
        for size_name in scale.size_names:
            build_size = resolve_size_name(scale, size_name)
            for batch in scale.batch_sizes:
                vm_stats = run_vm(model, build_size, batch, seed=scale.seed)
                aot_stats = run_acrobat(model, build_size, batch, seed=scale.seed)
                rows.append(
                    [
                        model,
                        size_name,
                        batch,
                        vm_stats.latency_ms,
                        aot_stats.latency_ms,
                        vm_stats.latency_ms / max(aot_stats.latency_ms, 1e-9),
                    ]
                )
    return HEADERS, rows


def main() -> str:
    headers, rows = run()
    text = format_table(headers, rows, title="Table 4: Relay VM vs ACROBAT AOT (inference latency, ms)")
    print(text)
    return text


if __name__ == "__main__":
    main()
