"""Serving benchmark: open-loop traffic through the flush-policy matrix.

The paper's tables measure one mini-batch at a time; a serving system sees
*traffic*.  This driver replays Poisson arrivals (open-loop: arrival times
are fixed in advance, so queueing under load is measured honestly) against
TreeLSTM and BiRNN sessions under every built-in flush policy and reports
the latency-vs-throughput tradeoff each policy picks:

* ``per_request`` — flush after every submit (no cross-request batching;
  the baseline every policy is compared against);
* ``size(8)`` — classic fixed-size batching;
* ``deadline(5ms)`` — bounded queueing delay;
* ``adaptive`` — cost-model-driven batching (continuous batching under
  backlog).

Reported per configuration: throughput, p50/p99 end-to-end latency on the
simulated clock, mean batch size, total kernel launches and the launch
reduction vs ``per_request``.  Every policy's outputs are checked against
the eager reference — batching policy must never change results.  The
replay is deterministic: measured host wall time is excluded and replaced
by the fixed linear ``HOST_MODEL`` cost, so every column is a pure
function of the trace and the device cost model (bit-for-bit identical
across runs and hosts).

A second table isolates the memory planner's plan cache
(:mod:`repro.memory.planner`): a session flushing structurally identical
rounds replays cached plans, and the table compares the ``memory_planning``
bucket and hit rate against the uncached path.
"""

from __future__ import annotations

import argparse
import os
from typing import Dict, List, Optional, Tuple

from ..compiler.options import CompilerOptions
from ..core.api import compile_model, reference_run
from ..serve.clock import SimulatedClock
from ..serve.traffic import TrafficReport, poisson_arrivals, replay
from ..utils import values_allclose
from .harness import (
    ExperimentScale,
    build_model,
    current_scale,
    format_table,
    make_instances,
    resolve_size_name,
    save_result,
)

HEADERS = (
    "model",
    "policy",
    "throughput_rps",
    "p50_ms",
    "p99_ms",
    "mean_batch",
    "launches",
    "launch_reduction",
    "matches_ref",
)

CACHE_HEADERS = (
    "config",
    "flushes",
    "hits",
    "misses",
    "hit_rate",
    "memory_planning_ms",
)

#: flush-policy matrix: (row label, registry name, policy arguments)
POLICIES: Tuple[Tuple[str, str, Dict], ...] = (
    ("per_request", "size", {"n": 1}),
    ("size(8)", "size", {"n": 8}),
    ("deadline(5ms)", "deadline", {"ms": 5.0}),
    ("adaptive", "adaptive", {}),
)

MODELS = ("treelstm", "birnn")

#: open-loop arrival rate (requests/second on the simulated clock) and
#: request-trace length per scale; the rate is set well above the
#: per-request service rate so batching pressure is real (open-loop
#: saturation), keeping the launch-reduction margins stable across hosts
ARRIVAL_RATE = {"reduced": 4000.0, "paper": 2000.0}
NUM_REQUESTS = {"reduced": 32, "paper": 64}

#: deterministic linear host-cost model (ms per round, ms per request)
#: charged in place of measured wall time: the policy matrix replays
#: bit-for-bit on any host, so the launch-reduction and latency columns
#: are pure functions of the trace + cost model (no perf-floor flake)
HOST_MODEL = (0.5, 0.05)


def _best_of() -> int:
    return max(1, int(os.environ.get("REPRO_BEST_OF", "1")))


def _replay_policy(
    compiled, requests, rate: float, seed: int, policy: str, policy_args: Dict
) -> TrafficReport:
    arrivals = poisson_arrivals(rate, len(requests), seed=seed)
    session = compiled.serve(policy, clock=SimulatedClock(), **policy_args)
    return replay(
        session, requests, arrivals, deterministic=True, host_model=HOST_MODEL
    )


def run(scale: Optional[ExperimentScale] = None) -> Tuple[Tuple[str, ...], List[List]]:
    """The policy-matrix traffic table (one row per model x policy)."""
    scale = scale or current_scale()
    n = NUM_REQUESTS.get(scale.name, 32)
    rate = ARRIVAL_RATE.get(scale.name, 2500.0)

    rows: List[List] = []
    for model_name in MODELS:
        size_name = resolve_size_name(scale, scale.size_names[0])
        mod, params, size = build_model(model_name, size_name, scale.seed)
        requests = make_instances(model_name, mod, size, n, seed=scale.seed + 1)
        reference = reference_run(mod, params, requests)
        compiled = compile_model(mod, params, CompilerOptions())

        base_launches: Optional[int] = None
        for label, policy, policy_args in POLICIES:
            # the replay is deterministic (fixed host model, simulated
            # clock), so a single run is already exact — no best-of-N needed
            report = _replay_policy(
                compiled, requests, rate, scale.seed, policy, policy_args
            )
            ok = all(
                values_allclose(a, b) for a, b in zip(reference, report.outputs)
            )
            if label == "per_request":
                base_launches = report.kernel_launches
            rows.append(
                [
                    model_name,
                    label,
                    report.throughput_rps,
                    report.p50_ms,
                    report.p99_ms,
                    report.mean_batch,
                    report.kernel_launches,
                    base_launches / report.kernel_launches,
                    "yes" if ok else "NO",
                ]
            )
    return HEADERS, rows


def run_plan_cache(
    scale: Optional[ExperimentScale] = None,
    rounds: int = 4,
    batch: int = 8,
) -> Tuple[Tuple[str, ...], List[List]]:
    """The plan-cache table: ``rounds`` structurally identical session
    flushes with the cache on vs off."""
    scale = scale or current_scale()
    size_name = resolve_size_name(scale, scale.size_names[0])
    mod, params, size = build_model("treelstm", size_name, scale.seed)
    requests = make_instances("treelstm", mod, size, batch, seed=scale.seed + 2)
    reference = reference_run(mod, params, requests)

    rows: List[List] = []
    for label, cached in (("plan_cache=on", True), ("plan_cache=off", False)):
        def measure() -> Tuple[float, int, int]:
            compiled = compile_model(mod, params, CompilerOptions(plan_cache=cached))
            session = compiled.session(max_batch=batch)
            for _ in range(rounds):
                handles = [session.submit(r) for r in requests]
                assert all(
                    values_allclose(a, h.result())
                    for a, h in zip(reference, handles)
                ), "plan-cached session diverged from the reference"
            planning = sum(s.host_ms.get("memory_planning", 0.0) for s in session.history)
            memory = session.last_stats.memory
            return planning, memory["plan_cache_hits"], memory["plan_cache_misses"]

        # sub-millisecond planning buckets on a noisy host need benchmark
        # hygiene: one untimed warmup run per config (the first config in a
        # cold process otherwise eats all code-path warmup), then best-of-N
        # with a floor of 3
        measure()
        planning, hits, misses = min(
            (measure() for _ in range(max(3, _best_of()))), key=lambda m: m[0]
        )
        rows.append(
            [
                label,
                rounds,
                hits,
                misses,
                hits / max(1, hits + misses),
                planning,
            ]
        )
    return CACHE_HEADERS, rows


def format_report(
    headers: Tuple[str, ...],
    rows: List[List],
    cache_headers: Tuple[str, ...],
    cache_rows: List[List],
) -> str:
    """Both tables as one result file."""
    parts = [
        format_table(
            headers,
            rows,
            title=(
                "Serving: open-loop Poisson traffic, flush-policy matrix "
                "(simulated clock; latencies include queueing + execution)"
            ),
        ),
        "",
        format_table(
            cache_headers,
            cache_rows,
            title="Plan cache: structurally identical session flushes (TreeLSTM)",
        ),
    ]
    return "\n".join(parts)


def main(argv: Optional[List[str]] = None) -> str:
    """``--continuous`` delegates to the continuous-vs-caller-driven intake
    benchmark (:mod:`repro.experiments.continuous`), the CI serving smoke;
    the default regenerates the flush-policy matrix + plan-cache tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.serving",
        description="Serving benchmarks: flush-policy matrix (default) or "
        "the continuous-batching intake comparison (--continuous).",
    )
    parser.add_argument(
        "--continuous",
        action="store_true",
        help="run the continuous-vs-caller-driven intake benchmark instead",
    )
    # in-process callers (python -m repro.experiments) pass no argv: parse
    # nothing rather than sys.argv, exactly as the sharding driver does
    args = parser.parse_args(list(argv) if argv is not None else [])
    if args.continuous:
        from . import continuous

        return continuous.main()
    headers, rows = run()
    cache_headers, cache_rows = run_plan_cache()
    text = format_report(headers, rows, cache_headers, cache_rows)
    print(text)
    save_result("serving", text)
    return text


if __name__ == "__main__":
    import sys

    main(sys.argv[1:])
