"""Table 8: Cortex vs ACROBAT on the recursive models.

Cortex is hand-specialized for recursion: fully fused level-synchronous
kernels and near-zero runtime overhead, at the price of generality and
developer effort.  Expected shape: Cortex is somewhat faster than ACROBAT on
TreeLSTM and BiRNN, and much slower on MV-RNN where its restrictive
interface forces extra copies of the per-leaf embedding matrices.
"""

from __future__ import annotations

from typing import List, Tuple

from .harness import (
    ExperimentScale,
    current_scale,
    format_table,
    resolve_size_name,
    run_acrobat,
    run_cortex,
)

MODELS = ("treelstm", "mvrnn", "birnn")
HEADERS = ("model", "size", "batch", "cortex_ms", "acrobat_ms", "cortex_over_acrobat")


def run(scale: ExperimentScale | None = None) -> Tuple[Tuple[str, ...], List[List]]:
    scale = scale or current_scale()
    rows: List[List] = []
    for model in MODELS:
        for size_name in scale.size_names:
            build_size = resolve_size_name(scale, size_name)
            for batch in scale.batch_sizes:
                cx = run_cortex(model, build_size, batch, seed=scale.seed)
                ab = run_acrobat(model, build_size, batch, seed=scale.seed)
                rows.append(
                    [
                        model,
                        size_name,
                        batch,
                        cx.latency_ms,
                        ab.latency_ms,
                        cx.latency_ms / max(ab.latency_ms, 1e-9),
                    ]
                )
    return HEADERS, rows


def main() -> str:
    headers, rows = run()
    text = format_table(headers, rows, title="Table 8: Cortex vs ACROBAT (inference latency, ms)")
    print(text)
    return text


if __name__ == "__main__":
    main()
