"""Regenerate result tables: ``python -m repro.experiments [name ...]``.

With no arguments every experiment runs (all tables/figures plus the
serving benchmark) and each formatted table is written to
``benchmarks/results/`` (or ``REPRO_RESULTS_DIR``); pass experiment names
(``table5``, ``figure6``, ``serving``, ...) to regenerate a subset.  Set
``REPRO_SCALE=paper`` for the paper's model sizes and ``REPRO_BEST_OF=N``
for best-of-N latency measurements.
"""

from __future__ import annotations

import sys

from . import ALL_EXPERIMENTS
from .harness import save_result


def main(argv) -> int:
    names = list(argv) or sorted(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(ALL_EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    for name in names:
        print(f"== {name} ==")
        text = ALL_EXPERIMENTS[name].main()
        path = save_result(name, text)
        print(f"-> {path}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
