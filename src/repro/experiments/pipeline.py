"""Pipeline benchmark: depth-staged placements on deep vs wide models.

The sharding benchmark (:mod:`repro.experiments.sharding`) sweeps the
*data-parallel* placements; this one sweeps the two *model-parallel* ones:

* ``pipeline`` — depth-staged execution: the stage balancer partitions a
  run's scheduled rounds into contiguous depth stages (one per group
  member) off the per-block EWMA cost observer, and the serve loop's
  per-device timeline lanes overlap stage ``k`` of one round with stage
  ``k+1`` of the previous one;
* ``tensor_parallel`` — heavy blocks split column/row-wise across the
  group with the gather priced over the interconnect.

The contrast the sweep is after: request-level sharding (``round_robin``)
is useless on *deep* fiber models (stackrnn, drnn) — every node in a sync
round carries the same instance id, so the whole round lands on one member
and extra devices idle — while ``pipeline`` stages depth across members
and keeps them busy.  On a *wide* model (treelstm) the opposite holds:
rounds are instance-parallel, so ``round_robin`` scales and staging depth
mostly adds stage-boundary traffic.  Placement is a policy choice, and the
right one depends on the model's shape.

Traffic is replayed with **continuous batching** (the serve loop overlaps
intake with device execution) in the same device-bound regime as the
sharding sweep: paper-"small" sizes on the compute-starved edge-class
spec, NVLink-class interconnect, deterministic host-cost model.  Every
configuration is checked reference-identical, replayed twice for bitwise
determinism, and its per-device counters are checked to sum to the group
totals — placement must change *where* work runs, never results.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence, Tuple

from ..compiler.options import CompilerOptions
from ..core.api import compile_model, reference_run
from ..devices.group import DeviceGroup
from ..serve.clock import SimulatedClock
from ..serve.traffic import TrafficReport, bursty_arrivals, replay_continuous
from ..utils import values_allclose
from .continuous import _bitwise_equal
from .harness import (
    ExperimentScale,
    build_model,
    current_scale,
    format_table,
    make_instances,
    save_result,
)
from .sharding import EDGE_SPEC, INTERCONNECT, _busy_balance, _counters_sum_ok

HEADERS = (
    "model",
    "placement",
    "devices",
    "throughput_rps",
    "speedup",
    "p50_ms",
    "p99_ms",
    "launches",
    "peer_transfers",
    "balance",
    "active_devices",
    "matches_ref",
    "counters_sum",
    "deterministic",
)

PLACEMENTS = ("single", "round_robin", "pipeline", "tensor_parallel")
DEVICE_COUNTS = (1, 2, 4)

#: deep fiber models (one depth level per sync round — the pipeline's home
#: turf) and the wide contrast model (instance-parallel rounds)
DEEP_MODELS = ("stackrnn", "drnn")
WIDE_MODELS = ("treelstm",)
MODELS = DEEP_MODELS + WIDE_MODELS

#: the sweep uses the paper's "small" model size even at reduced scale —
#: depth staging needs real per-round device work to overlap
SIZE_NAME = "small"

#: trace length per model: the fiber models get a longer trace because the
#: cross-round stage balancer learns the run shape from completed runs (the
#: first, unobserved flush executes entirely on stage 0), so the steady
#: state needs a few flushes to dominate the ramp; treelstm stages within
#: the round from flush one and its Python host cost per request is higher
NUM_REQUESTS = {"stackrnn": 96, "drnn": 96, "treelstm": 48}

#: open-loop bursty arrivals well above the single-device service rate, so
#: the sweep measures serving capacity under saturation
ARRIVAL_RATE = 4000.0
BURST = 6
FLUSH_SIZE = 16

#: deterministic host-cost model (per-flush base ms, per-request ms): kept
#: small so the regime stays device-bound — a fat host cost serializes
#: against the device timeline and masks every placement equally
HOST_MODEL = (0.5, 0.05)


def _replay_config(
    compiled, requests, arrivals, placement: str, devices: int
) -> Tuple[TrafficReport, object]:
    group = DeviceGroup(devices, spec=EDGE_SPEC, interconnect=INTERCONNECT)
    session = compiled.serve(
        "size",
        n=FLUSH_SIZE,
        clock=SimulatedClock(),
        devices=group,
        placement=placement,
    )
    report = replay_continuous(
        session, requests, arrivals, deterministic=True, host_model=HOST_MODEL
    )
    return report, session


def run(
    scale: Optional[ExperimentScale] = None,
    models: Sequence[str] = MODELS,
    device_counts: Sequence[int] = DEVICE_COUNTS,
    placements: Sequence[str] = PLACEMENTS,
    check_determinism: bool = True,
) -> Tuple[Tuple[str, ...], List[List]]:
    """The placement table (one row per model x placement x device count).

    Device counts are swept in ascending order; each placement's
    ``speedup`` column is relative to its own run at the smallest swept
    count.  With ``check_determinism`` every configuration is replayed
    twice and per-request latencies plus outputs are compared bit-for-bit.
    """
    scale = scale or current_scale()
    device_counts = tuple(sorted(set(device_counts)))

    rows: List[List] = []
    for model in models:
        n = NUM_REQUESTS.get(model, 48)
        mod, params, size = build_model(model, SIZE_NAME, scale.seed)
        requests = make_instances(model, mod, size, n, seed=scale.seed + 3)
        reference = reference_run(mod, params, requests)
        compiled = compile_model(mod, params, CompilerOptions())
        arrivals = bursty_arrivals(
            ARRIVAL_RATE, n, burst=BURST, seed=scale.seed + 5
        )

        for placement in placements:
            base_throughput: Optional[float] = None
            for devices in device_counts:
                report, session = _replay_config(
                    compiled, requests, arrivals, placement, devices
                )
                ok = all(
                    values_allclose(a, b)
                    for a, b in zip(reference, report.outputs)
                )
                if check_determinism:
                    rerun, _ = _replay_config(
                        compiled, requests, arrivals, placement, devices
                    )
                    deterministic = (
                        report.latencies_ms == rerun.latencies_ms
                        and _bitwise_equal(report.outputs, rerun.outputs)
                    )
                else:
                    deterministic = True
                peer = sum(
                    s.device.get("num_peer_transfers", 0)
                    for s in session.history
                )
                if base_throughput is None:
                    base_throughput = report.throughput_rps
                balance, active = _busy_balance(session.history)
                rows.append(
                    [
                        model,
                        placement,
                        devices,
                        report.throughput_rps,
                        report.throughput_rps / base_throughput,
                        report.p50_ms,
                        report.p99_ms,
                        report.kernel_launches,
                        peer,
                        balance,
                        active,
                        "yes" if ok else "NO",
                        "yes" if _counters_sum_ok(session.history) else "NO",
                        "yes" if deterministic else "NO",
                    ]
                )
    return HEADERS, rows


def format_report(headers: Tuple[str, ...], rows: List[List]) -> str:
    return format_table(
        headers,
        rows,
        title=(
            "Pipeline: continuous-batching traffic vs device count for the "
            f"depth-staged placements ({SIZE_NAME}-size models on a "
            f"{EDGE_SPEC.name} group, {INTERCONNECT} interconnect, "
            f"size({FLUSH_SIZE}) flushes; deep models = "
            f"{' '.join(DEEP_MODELS)}, wide = {' '.join(WIDE_MODELS)}; "
            "speedup is each placement's throughput over its own run at "
            "the smallest swept device count)"
        ),
    )


def main(argv: Optional[Sequence[str]] = None) -> str:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.pipeline",
        description="Depth-staged placement sweep (pipeline/tensor-parallel "
        "vs the sharding baselines on deep and wide models).",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: one deep model at {1, 2} devices, asserts reference "
        "identity on every row and pipeline beating round_robin at 2 "
        "devices, no result file",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=None,
        choices=MODELS,
        metavar="MODEL",
        help=f"models to sweep (default: {' '.join(MODELS)})",
    )
    parser.add_argument(
        "--devices",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="device counts to sweep (default: 1 2 4); the 1-device "
        "baseline is always included so the speedup column stays "
        "comparable across invocations",
    )
    args = parser.parse_args(list(argv) if argv is not None else [])
    if args.quick:
        headers, rows = run(
            models=("stackrnn",),
            device_counts=(1, 2),
            placements=("single", "round_robin", "pipeline"),
        )
        text = format_report(headers, rows)
        print(text)
        col = {name: i for i, name in enumerate(headers)}
        by = {(r[col["placement"]], r[col["devices"]]): r for r in rows}
        # the smoke gate: placements never change results or accounting,
        # replays are bitwise, and depth staging actually wins on a deep
        # model where request-level sharding cannot (same instance id per
        # round => round_robin leaves the second device idle).  Safe on a
        # shared CI box — the replay runs on simulated time, so throughput
        # is a pure function of the trace and the cost models.
        for row in rows:
            key = f"{row[col['placement']]}@{row[col['devices']]}"
            assert row[col["matches_ref"]] == "yes", f"{key}: outputs diverged"
            assert row[col["counters_sum"]] == "yes", f"{key}: counters leak"
            assert row[col["deterministic"]] == "yes", f"{key}: not bitwise"
        pipe = by[("pipeline", 2)][col["throughput_rps"]]
        rr = by[("round_robin", 2)][col["throughput_rps"]]
        assert pipe > rr, f"pipeline {pipe:.1f} <= round_robin {rr:.1f} rps"
        return text
    counts: Sequence[int] = DEVICE_COUNTS
    if args.devices is not None:
        counts = tuple(sorted({1, *args.devices}))
    headers, rows = run(
        models=tuple(args.models) if args.models else MODELS,
        device_counts=counts,
    )
    text = format_report(headers, rows)
    print(text)
    save_result("pipeline", text)
    return text


if __name__ == "__main__":
    import sys

    main(sys.argv[1:])
