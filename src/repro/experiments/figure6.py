"""Figure 6: ablation of ACROBAT's optimizations.

Every model, both sizes, at the largest batch size, executed under the six
cumulative optimization levels of the paper (no fusion → +standard fusion →
+grain-size coarsening → +inline depth computation → +program phases/ghost
ops → +gather-operator fusion).  Expected shape: fusion helps everywhere;
coarsening and inline depth matter most for control-flow-heavy models
(TreeLSTM, MV-RNN, StackRNN, DRNN); program phases help BiRNN; gather
fusion is mixed (it can hurt iterative models whose operands are already
contiguous).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..compiler.options import CompilerOptions
from .harness import ExperimentScale, current_scale, format_table, resolve_size_name, run_acrobat

MODELS = ("treelstm", "mvrnn", "birnn", "nestedrnn", "drnn", "berxit", "stackrnn")


def level_names() -> List[str]:
    return [name for name, _ in CompilerOptions.ablation_levels()]


def run(
    scale: ExperimentScale | None = None, models: Sequence[str] = MODELS
) -> Tuple[Tuple[str, ...], List[List]]:
    scale = scale or current_scale()
    levels = CompilerOptions.ablation_levels()
    headers = ("model", "size", "batch") + tuple(name for name, _ in levels)
    batch = scale.batch_sizes[-1]
    rows: List[List] = []
    for model in models:
        for size_name in scale.size_names:
            build_size = resolve_size_name(scale, size_name)
            latencies = []
            for _, options in levels:
                stats = run_acrobat(model, build_size, batch, options=options, seed=scale.seed)
                latencies.append(stats.latency_ms)
            rows.append([model, size_name, batch] + latencies)
    return headers, rows


def main() -> str:
    headers, rows = run()
    text = format_table(
        headers, rows, title="Figure 6: inference latency (ms) under cumulative optimization levels"
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
