"""Shape-keyed kernel specialization: the JIT tier below the plan cache.

Steady-state serving replays a small set of recurring rounds.  The plan
cache (PR 3) already stops re-*planning* them; this tier stops re-*deriving*
everything else per launch: operand resolution (gather layout, peer-transfer
pricing), per-op batched dispatch (op lookup, attribute adjustment) and
output layout inspection are frozen per ``(block, batch_size,
operand-layout, device)`` fingerprint once it recurs past a promotion
threshold.  The generic NumPy path remains the correctness oracle: every
specialized launch is reference-identical by construction, guarded by cheap
always-on invariant checks and an opt-in full cross-check.

See :mod:`repro.specialize.cache` for the promotion state machine and
:mod:`repro.specialize.entry` for the frozen per-fingerprint state.
"""

from .cache import (  # noqa: F401
    BUILD,
    COLD,
    DEMOTED,
    PROMOTED,
    UNSUPPORTED,
    SpecializationCache,
    SpecSlot,
)
from .entry import SpecializedEntry  # noqa: F401

__all__ = [
    "SpecializationCache",
    "SpecSlot",
    "SpecializedEntry",
    "BUILD",
    "COLD",
    "PROMOTED",
    "UNSUPPORTED",
    "DEMOTED",
]
