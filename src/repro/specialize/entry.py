"""Frozen specialized execution state for one promoted fingerprint.

A :class:`SpecializedEntry` is built from one *oracle* launch — the generic
``planner.resolve`` → ``kernel.execute_batched`` path — of a batch whose
plan-cache slot crossed the promotion threshold.  Everything the generic
path re-derives per round is frozen at build time:

* the **gather layout**: one compact step per operand recording how the
  block input is obtained (shared array reuse, arena slice, scattered
  parts), with reusable operand descriptors and parts lists mutated in
  place — no per-launch allocation;
* the **host-array references**: shared operands and host-valued parts keep
  the promotion round's arrays by identity; a launch whose host args are
  the same objects (the steady-state serving case) skips per-part
  type/shape/dtype validation *and* the residency bookkeeping, because the
  device residency cache is identity-keyed and monotone — an array the
  entry holds alive stays resident with a guaranteed zero-charge;
* the **device charges**: per-source peer-transfer bytes and explicit
  gather bytes, precomputed from the promotion launch and replayed as a
  flat list instead of re-coalescing per launch;
* the **launch records**: the cost records the oracle produced, replayed
  verbatim (FLOPs/bytes are pure functions of the frozen shapes);
* the **output arena templates**: shape and batched/broadcast layout per
  block output, sized from the fingerprint, so commit skips the generic
  layout inspection;
* optional **stack buffers**: preallocated ``[B, ...]`` arrays the fused
  gather stacks into, only for inputs the compiled program proved can never
  escape the block as a view (:attr:`CompiledBlockProgram.reusable_inputs`).

Soundness contract
------------------
An entry is only ever handed plans instantiated from the *same* plan-cache
template its slot hangs off.  For multi-instance batches the round
signature already pins the block, the batch membership, the device
assignment, every varying operand's producer *positionally*, and which args
are host-valued — so a correctly executed round delivers each lazy operand
from the same producer batch on the same device as the promotion round, and
the per-launch checks do not re-derive what the signature guarantees.  What
the signature deliberately does **not** pin is re-verified every launch by
the cheap always-on invariant pass:

* host-array identity for shared operands; host args that are *not* the
  frozen objects revalidate shape/dtype and re-enter the residency
  bookkeeping (then re-freeze, so a serving loop that swaps its host
  arrays once is fast again on the next round);
* first-element shape/dtype per varying operand (catches shape drift
  propagating from changed host inputs through unpromoted producers; a
  mid-batch ragged part additionally fails the kernel's own stack, exactly
  as it would on the generic path);
* the planner's own placement invariant for contiguous slices;
* batch-of-one operands entirely (singleton signatures record membership
  but no operand columns, so nothing about their args is pinned).

Verification happens strictly before the frozen peer/gather charges, so a
failed launch demotes with the device simulator untouched and the generic
fallback re-charges from zero.  (Residency uploads — ``ensure_resident``
for not-yet-frozen host args — may run during verification; they are
idempotent and the generic fallback would charge the identical
first-upload, so accounting stays exact.)

The numerical path is :class:`~repro.kernels.specialized.CompiledBlockProgram`,
which executes the same registry functions in the same order as the generic
kernel — specialized launches are reference-identical by construction, and
:meth:`crosscheck` (opt-in, ``ExecutionOptions.specialize_crosscheck``)
re-runs the oracle on the same operands and compares outputs and launch
records to enforce it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..kernels.batched import BatchedOperand, BatchedOutput, LaunchRecord
from ..memory.arena import StorageArena, TensorStorage
from ..memory.planner import BatchPlan, OperandKind
from ..runtime.tensor import LazyTensor

# verify-and-bind step opcodes (one step per operand, in block-input order)
_SHARED = 0  #: (op, input, frozen host array)
_SLICE = 1  #: (op, pos, input, broadcast?, item_shape, dtype) — contiguous/peer
_SINGLE_LAZY = 2  #: (op, pos, input, shape, dtype) — batch-of-one arena view
_SINGLE_HOST = 3  #: (op, pos, input, [ref], shape, dtype) — batch-of-one host
_SCATTER_LAZY = 4  #: (op, pos, input, item_shape, dtype) — every part lazy
_SCATTER_MIXED = 5  #: (op, pos, input, lazy_idx, host_idx, refs, shape, dtype)

# frozen charge opcodes
_PEER_CHARGE = 0  #: (op, src_device, nbytes)
_GATHER_CHARGE = 1  #: (op, 0, nbytes)


class SpecializedEntry:
    """One promoted fingerprint's frozen dispatch + execution state."""

    __slots__ = (
        "program",
        "batch_size",
        "device_index",
        "steps",
        "charges",
        "launches",
        "output_specs",
        "stack_buffers",
        "frozen_nbytes",
        "_operands",
    )

    def __init__(
        self,
        program: Any,
        batch_size: int,
        device_index: int,
        steps: List[Tuple],
        charges: List[Tuple],
        operands: List[BatchedOperand],
        launches: List[LaunchRecord],
        output_specs: Tuple[Tuple[bool, Tuple[int, ...]], ...],
        stack_buffers: Optional[Dict[int, np.ndarray]],
    ) -> None:
        self.program = program
        self.batch_size = batch_size
        self.device_index = device_index
        self.steps = steps
        self.charges = charges
        #: reusable operand descriptors, mutated in place per launch (an
        #: entry serves one launch at a time; the kernel consumes operands
        #: synchronously, so nothing retains them across launches)
        self._operands = operands
        self.launches = launches
        self.output_specs = output_specs
        self.stack_buffers = stack_buffers
        buffer_bytes = (
            sum(float(b.nbytes) for b in stack_buffers.values())
            if stack_buffers
            else 0.0
        )
        # reported frozen-state footprint: the real buffers plus a flat
        # per-record estimate for the step/charge/launch/output tuples
        self.frozen_nbytes = buffer_bytes + 112.0 * (
            len(steps) + len(charges) + len(launches) + len(output_specs)
        )

    # -- construction ----------------------------------------------------------
    @classmethod
    def build(
        cls,
        plan: BatchPlan,
        kernel: Any,
        resolved: List[BatchedOperand],
        outputs: List[BatchedOutput],
        launches: List[LaunchRecord],
        options: Any,
    ) -> Optional["SpecializedEntry"]:
        """Freeze the state of one completed oracle launch, or return None
        when the layout cannot be specialized (the slot is then marked
        terminally unsupported and the fingerprint stays on the generic
        path).

        Must run after ``execute_batched`` and *before* ``planner.commit``
        (which releases ``plan.batch``).
        """
        nodes = plan.batch.nodes
        batch_size = len(nodes)
        dev = plan.device
        steps: List[Tuple] = []
        charges: List[Tuple] = []
        operands: List[BatchedOperand] = []
        program = kernel.specialized_program(batch_size)
        stack_buffers: Dict[int, np.ndarray] = {}

        for pos, op in enumerate(plan.operands):
            kind = op.kind
            i = op.index
            first = nodes[0].args[i]
            if kind is OperandKind.SHARED:
                if type(first) is not np.ndarray:
                    # lazily produced or non-array "shared" values have no
                    # stable identity to pin across rounds
                    return None
                steps.append((_SHARED, i, first))
                operands.append(resolved[pos])  # frozen, reused every launch
            elif kind is OperandKind.CONTIGUOUS or kind is OperandKind.PEER:
                if batch_size == 1:
                    if isinstance(first, LazyTensor):
                        storage = first.storage
                        if storage.arena.device_index != dev:
                            # remote singleton: the generic path reclassifies
                            # and charges it at resolve time — keep it there
                            return None
                        arr = storage.array
                        steps.append((_SINGLE_LAZY, pos, i, arr.shape, arr.dtype))
                        operands.append(BatchedOperand(shared=False))
                    else:
                        if type(first) is not np.ndarray:
                            return None
                        steps.append(
                            (_SINGLE_HOST, pos, i, [first], first.shape, first.dtype)
                        )
                        operands.append(
                            BatchedOperand(shared=False, array=first[None])
                        )
                else:
                    storage = first.storage
                    arena = storage.arena
                    is_b = arena.broadcast
                    item_shape = arena.data.shape if is_b else arena.data.shape[1:]
                    steps.append(
                        (_SLICE, pos, i, is_b, item_shape, arena.data.dtype)
                    )
                    operands.append(BatchedOperand(shared=False))
                    if kind is OperandKind.PEER:
                        nbytes = (
                            arena.nbytes
                            if is_b
                            else float(storage.nbytes) * batch_size
                        )
                        charges.append((_PEER_CHARGE, arena.device_index, nbytes))
            else:  # GATHER / FUSED_GATHER: freeze the scattered layout
                lazy_idx: List[int] = []
                host_idx: List[int] = []
                refs: List[Optional[np.ndarray]] = [None] * batch_size
                parts: List[Any] = [None] * batch_size
                remote: Dict[int, float] = {}
                seen_broadcast: set = set()
                gather_bytes = 0.0
                item_shape: Optional[Tuple[int, ...]] = None
                item_dtype = None
                for b, node in enumerate(nodes):
                    arg = node.args[i]
                    if isinstance(arg, LazyTensor):
                        storage = arg.storage
                        arena = storage.arena
                        src = arena.device_index
                        lazy_idx.append(b)
                        if src != dev:
                            if arena.broadcast:
                                # broadcast parts share one underlying array:
                                # the arena ships once per consumer device
                                if arena.arena_id not in seen_broadcast:
                                    seen_broadcast.add(arena.arena_id)
                                    remote[src] = (
                                        remote.get(src, 0.0) + arena.nbytes
                                    )
                            else:
                                remote[src] = remote.get(src, 0.0) + float(
                                    storage.nbytes
                                )
                        gather_bytes += float(storage.nbytes)
                        arr = storage.array
                    else:
                        if type(arg) is not np.ndarray:
                            return None
                        host_idx.append(b)
                        refs[b] = arg
                        parts[b] = arg
                        gather_bytes += float(arg.nbytes)
                        arr = arg
                    if item_shape is None:
                        item_shape = arr.shape
                        item_dtype = arr.dtype
                    elif arr.shape != item_shape or arr.dtype != item_dtype:
                        # ragged/mixed parts cannot freeze a stack layout
                        return None
                if not host_idx:
                    steps.append((_SCATTER_LAZY, pos, i, item_shape, item_dtype))
                else:
                    steps.append(
                        (
                            _SCATTER_MIXED,
                            pos,
                            i,
                            tuple(lazy_idx),
                            tuple(host_idx),
                            refs,
                            item_shape,
                            item_dtype,
                        )
                    )
                explicit = kind is OperandKind.GATHER
                operands.append(
                    BatchedOperand(shared=False, parts=parts, scattered=not explicit)
                )
                for src in sorted(remote):
                    charges.append((_PEER_CHARGE, src, remote[src]))
                if explicit:
                    charges.append((_GATHER_CHARGE, 0, gather_bytes))
                if i in program.reusable_inputs and item_shape is not None:
                    stack_buffers[i] = np.empty(
                        (batch_size,) + item_shape, dtype=item_dtype
                    )

        output_specs = tuple((out.batched, out.array.shape) for out in outputs)
        return cls(
            program=program,
            batch_size=batch_size,
            device_index=dev,
            steps=steps,
            charges=charges,
            operands=operands,
            launches=list(launches),
            output_specs=output_specs,
            stack_buffers=stack_buffers or None,
        )

    # -- per-launch resolution -------------------------------------------------
    def try_resolve(
        self, plan: BatchPlan, device: Any, options: Any
    ) -> Optional[List[BatchedOperand]]:
        """Resolve a plan through the frozen layout, or None when an
        invariant no longer holds (the caller demotes and falls back).

        Invariants verify strictly before the frozen peer/gather charges,
        so a failed launch leaves the device simulator untouched and the
        generic fallback re-charges from zero (see the module docstring for
        the ``ensure_resident`` caveat).
        """
        try:
            if not self._verify_and_bind(plan, device, options):
                return None
        except Exception:
            # anything structurally surprising (missing storage, host value
            # where a tensor was frozen) demotes rather than crashes
            return None
        charges = self.charges
        if charges:
            dev = plan.device
            local = device.device_for(dev)
            for code, src, nbytes in charges:
                if code == _PEER_CHARGE:
                    device.peer_transfer(src, dev, nbytes)
                else:
                    local.gather(nbytes)
        return self._operands

    def _verify_and_bind(self, plan: BatchPlan, device: Any, options: Any) -> bool:
        """One pass over the frozen steps: run the cheap invariant checks
        and bind this round's arrays/parts into the reusable operands."""
        nodes = plan.batch.nodes
        dev = plan.device
        local = None  # fetched lazily: steady-state launches never need it
        batch_size = self.batch_size
        operands = self._operands
        plan_ops = plan.operands
        for step in self.steps:
            code = step[0]
            if code == _SCATTER_LAZY:
                _, pos, i, item_shape, dtype = step
                parts = operands[pos].parts
                b = 0
                for node in nodes:
                    parts[b] = node.args[i].storage
                    b += 1
                arena = parts[0].arena
                data = arena.data
                shape = data.shape if arena.broadcast else data.shape[1:]
                if shape != item_shape or data.dtype != dtype:
                    return False
            elif code == _SLICE:
                _, pos, i, is_b, item_shape, dtype = step
                op = plan_ops[pos]
                storage = nodes[0].args[i].storage
                arena = storage.arena
                if arena.arena_id != op.arena_id or storage.offset != op.start:
                    return False
                data = arena.data
                shape = data.shape if is_b else data.shape[1:]
                if shape != item_shape or data.dtype != dtype:
                    return False
                operands[pos].array = arena.slice(op.start, batch_size)
            elif code == _SCATTER_MIXED:
                _, pos, i, lazy_idx, host_idx, refs, item_shape, dtype = step
                parts = operands[pos].parts
                for b in lazy_idx:
                    parts[b] = nodes[b].args[i].storage
                if lazy_idx:
                    arena = parts[lazy_idx[0]].arena
                    data = arena.data
                    shape = data.shape if arena.broadcast else data.shape[1:]
                    if shape != item_shape or data.dtype != dtype:
                        return False
                for b in host_idx:
                    arg = nodes[b].args[i]
                    if arg is refs[b]:
                        continue  # frozen part: validated + resident already
                    if (
                        type(arg) is not np.ndarray
                        or arg.shape != item_shape
                        or arg.dtype != dtype
                    ):
                        return False
                    if local is None:
                        local = device.device_for(dev)
                    local.ensure_resident(arg, options.batch_memcpy)
                    refs[b] = arg  # re-freeze: fast again next round
                    parts[b] = arg
            elif code == _SHARED:
                if nodes[0].args[step[1]] is not step[2]:
                    return False
                # the frozen array is kept alive by this entry, so it stays
                # device-resident — no per-launch residency bookkeeping
            elif code == _SINGLE_LAZY:
                _, pos, i, shape, dtype = step
                arg = nodes[0].args[i]
                if type(arg) is not LazyTensor:
                    return False
                storage = arg.storage
                if storage is None or storage.arena.device_index != dev:
                    return False
                arr = storage.array
                if arr.shape != shape or arr.dtype != dtype:
                    return False
                operands[pos].array = arr[None]
            else:  # _SINGLE_HOST
                _, pos, i, refs, shape, dtype = step
                arg = nodes[0].args[i]
                if arg is not refs[0]:
                    if (
                        type(arg) is not np.ndarray
                        or arg.shape != shape
                        or arg.dtype != dtype
                    ):
                        return False
                    if local is None:
                        local = device.device_for(dev)
                    local.ensure_resident(arg, options.batch_memcpy)
                    refs[0] = arg
                    operands[pos].array = arg[None]
        return True

    # -- execution / commit ----------------------------------------------------
    def execute(self, operands: List[BatchedOperand]) -> List[BatchedOutput]:
        """Run the flattened block program over resolved operands."""
        return self.program.execute(operands, self.stack_buffers)

    def crosscheck(
        self,
        kernel: Any,
        operands: List[BatchedOperand],
        outputs: List[BatchedOutput],
        launches: List[LaunchRecord],
    ) -> None:
        """Re-run the NumPy oracle on the same operands and fail loudly on
        any divergence (opt-in full cross-check mode)."""
        ref_outputs, ref_launches = kernel.execute_batched(operands, self.batch_size)
        if len(ref_outputs) != len(outputs):
            raise RuntimeError(
                f"specialized launch of block {kernel.name} produced "
                f"{len(outputs)} outputs, oracle produced {len(ref_outputs)}"
            )
        for k, (got, ref) in enumerate(zip(outputs, ref_outputs)):
            if got.batched != ref.batched or not np.array_equal(got.array, ref.array):
                raise RuntimeError(
                    f"specialized launch of block {kernel.name} diverged from "
                    f"the NumPy oracle on output {k}"
                )
        if len(launches) != len(ref_launches):
            raise RuntimeError(
                f"specialized launch of block {kernel.name} replayed "
                f"{len(launches)} launch records, oracle produced "
                f"{len(ref_launches)}"
            )
        for got_rec, ref_rec in zip(launches, ref_launches):
            if (
                got_rec.kernel_name != ref_rec.kernel_name
                or got_rec.batch_size != ref_rec.batch_size
                or got_rec.flops != ref_rec.flops
                or got_rec.bytes_read != ref_rec.bytes_read
                or got_rec.bytes_written != ref_rec.bytes_written
                or got_rec.scattered_bytes != ref_rec.scattered_bytes
            ):
                raise RuntimeError(
                    f"specialized launch of block {kernel.name} replayed a "
                    f"launch record diverging from the oracle "
                    f"({got_rec} != {ref_rec})"
                )

    def commit(
        self, plan: BatchPlan, outputs: List[BatchedOutput], device: Any
    ) -> None:
        """Commit outputs under the planned arena ids using the frozen
        output templates (mirrors ``MemoryPlanner.commit``)."""
        nodes = plan.batch.nodes
        tp_devices = plan.batch.tp_devices
        local = device.device_for(plan.device)
        for k, (out, arena_id) in enumerate(zip(outputs, plan.output_arena_ids)):
            batched, shape = self.output_specs[k]
            arr = out.array
            if arr.shape != shape:
                raise RuntimeError(
                    f"specialized commit: output {k} produced shape "
                    f"{arr.shape}, frozen template expected {shape}"
                )
            if batched:
                arena = StorageArena.from_batched(
                    arr, arena_id=arena_id, device_index=plan.device
                )
            else:
                arena = StorageArena.from_broadcast(
                    arr, len(nodes), arena_id=arena_id, device_index=plan.device
                )
            # mirror MemoryPlanner.commit: tensor-parallel outputs are
            # partial-output arenas assembled from the members' shards
            arena.partial_shards = tp_devices
            local.note_arena(arena)
            for b, node in enumerate(nodes):
                node.outputs[k].storage = TensorStorage(arena, b)
        for node in nodes:
            node.executed = True
        plan.batch = None
