"""The shape-keyed specialization cache: promotion state machine + stats.

The cache sits *below* the plan cache and *above* the kernel registry:

``plan cache`` -> ``specialization cache`` -> ``kernel registry``

Fingerprints reuse the plan cache's round signatures: every cached plan
template carries one :class:`SpecSlot` per batch, so a fingerprint is
``(round signature, batch position)`` — which pins the block, the batch
size, the device and the operand layout (exactly the ``(block, batch_size,
operand-layout)`` combination, keyed for free on the plan-cache hit path;
no per-launch fingerprint computation exists).

Slot lifecycle::

                 count >= threshold, layout freezes
    COLD ------------------------------------------> PROMOTED
      |                                                  |
      | layout cannot freeze                             | invariant check
      v                                                  v    fails
    UNSUPPORTED                                       DEMOTED

``COLD`` slots count hits; crossing the threshold JITs a
:class:`~repro.specialize.entry.SpecializedEntry` from that same launch's
oracle execution (the launch still runs generic — promotion never risks an
unverified path).  ``PROMOTED`` slots dispatch through the frozen entry.
``UNSUPPORTED`` (the layout cannot be frozen: lazily produced shared
operands, remote singletons, ragged scatter parts) and ``DEMOTED`` (a cheap
per-launch invariant stopped holding) are both terminal: the fingerprint
stays on the generic oracle path with one integer compare of overhead.

Promotion work happens inline on whatever loop triggered the flush — for
serving, the serve loop's flush slice — and costs one frozen-layout walk of
a single batch (microseconds); intake is never blocked on it.  A capacity
bound (``max_entries``) stops *new* promotions once reached; existing
entries keep hitting.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from .entry import SpecializedEntry

# slot states
COLD = 0
PROMOTED = 1
UNSUPPORTED = 2
DEMOTED = 3

#: sentinel returned by :meth:`SpecializationCache.poll` when this launch
#: should run the oracle path *and* freeze an entry from it
BUILD = object()


class SpecSlot:
    """Per-fingerprint specialization state, attached to one batch position
    of one cached plan template."""

    __slots__ = ("state", "count", "entry")

    def __init__(self) -> None:
        self.state = COLD
        self.count = 0
        self.entry: Optional[SpecializedEntry] = None


class SpecializationCache:
    """Owns every slot's promotion decisions and the tier's accounting."""

    def __init__(
        self,
        threshold: int = 3,
        crosscheck: bool = False,
        max_entries: int = 512,
    ) -> None:
        #: launches of one fingerprint before it promotes (the promoting
        #: launch itself still runs the generic oracle path)
        self.threshold = max(1, int(threshold))
        #: re-run the NumPy oracle after every specialized launch and fail
        #: on any divergence (debugging aid; opt-in)
        self.crosscheck = crosscheck
        #: stop promoting new fingerprints past this many live entries
        self.max_entries = max_entries
        #: dormant until a repeat-heavy caller arms it (serving sessions do,
        #: exactly as they arm the plan cache via ``expect_repeats``)
        self.armed = False
        # cumulative accounting (survives runtime.reset, like the plan cache)
        self.promotions = 0
        self.demotions = 0
        self.hits = 0
        self.misses = 0
        self.unsupported = 0
        self.entries = 0
        self.frozen_bytes = 0.0

    # -- arming ----------------------------------------------------------------
    def arm(self) -> bool:
        """Arm the tier; idempotent.  Returns True when newly armed."""
        was = self.armed
        self.armed = True
        return not was

    # -- slot lifecycle --------------------------------------------------------
    def make_slot(self) -> SpecSlot:
        """A fresh slot for one batch position of a new plan template."""
        return SpecSlot()

    def poll(self, slot: SpecSlot):
        """Per-launch decision for a slotted batch: a
        :class:`~repro.specialize.entry.SpecializedEntry` to dispatch
        through, the :data:`BUILD` sentinel (run generic, then freeze), or
        None (run generic).  Misses count launches that had a fingerprint
        but ran generic."""
        state = slot.state
        if state == PROMOTED:
            return slot.entry
        self.misses += 1
        if state == COLD:
            slot.count += 1
            if slot.count >= self.threshold and self.entries < self.max_entries:
                return BUILD
        return None

    def build_and_install(
        self,
        slot: SpecSlot,
        plan,
        kernel,
        resolved,
        outputs,
        launches,
        options,
    ) -> Optional[SpecializedEntry]:
        """Freeze an entry from a completed oracle launch and promote the
        slot; mark it terminally unsupported when the layout cannot freeze."""
        entry = SpecializedEntry.build(plan, kernel, resolved, outputs, launches, options)
        if entry is None:
            slot.state = UNSUPPORTED
            self.unsupported += 1
            return None
        slot.state = PROMOTED
        slot.entry = entry
        self.promotions += 1
        self.entries += 1
        self.frozen_bytes += entry.frozen_nbytes
        return entry

    def note_hit(self) -> None:
        self.hits += 1

    def demote(self, slot: SpecSlot) -> None:
        """An invariant broke: permanently return the fingerprint to the
        generic path and release its frozen state."""
        entry = slot.entry
        slot.state = DEMOTED
        slot.entry = None
        self.demotions += 1
        if entry is not None:
            self.entries -= 1
            self.frozen_bytes -= entry.frozen_nbytes

    def release_slots(self, slots: Optional[Iterable[SpecSlot]]) -> None:
        """Release the frozen state of an evicted plan template's slots (the
        planner calls this on LRU eviction so entry/byte accounting tracks
        live state, not garbage)."""
        if not slots:
            return
        for slot in slots:
            entry = slot.entry
            if entry is not None:
                slot.entry = None
                self.entries -= 1
                self.frozen_bytes -= entry.frozen_nbytes

    # -- reporting -------------------------------------------------------------
    def stats_dict(self) -> Dict[str, float]:
        """The ``RunStats.specialize`` bucket."""
        return {
            "promotions": self.promotions,
            "demotions": self.demotions,
            "hits": self.hits,
            "misses": self.misses,
            "unsupported": self.unsupported,
            "entries": self.entries,
            "frozen_bytes": self.frozen_bytes,
        }
