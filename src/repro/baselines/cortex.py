"""Cortex-style baseline (Fegade et al. 2021) for recursive models.

Cortex is specialized for *recursive* computations: the user manually lowers
the model into level-synchronous batched kernels that are aggressively fused
and persistent, with essentially no runtime scheduling.  It therefore
(Table 8) beats ACROBAT modestly on TreeLSTM/BiRNN, cannot express the
non-recursive models at all, and loses badly on MV-RNN because its
restrictive interface forces extra copies of the leaf embedding matrices.

This module hand-implements that execution style for the three models
Cortex supports, against the same parameters and inputs as the IR models, so
outputs remain comparable.  The device simulator is charged with the few,
large, fused kernel launches such an implementation performs; host overhead
is just the level bookkeeping below.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.trees import TreeNode
from ..kernels.batched import LaunchRecord
from ..runtime.device import DeviceSimulator, GPUSpec
from ..runtime.executor import RunStats

SUPPORTED_MODELS = ("treelstm", "mvrnn", "birnn")


def _charge(device: DeviceSimulator, name: str, arrays: Sequence[np.ndarray], flops: float) -> None:
    nbytes = float(sum(a.nbytes for a in arrays))
    device.launch(
        LaunchRecord(
            kernel_name=name,
            batch_size=max(1, len(arrays)),
            flops=flops,
            bytes_read=nbytes,
            bytes_written=nbytes * 0.5,
        ),
        gather_fused=True,
    )


def _collect_levels(trees: Sequence[TreeNode]) -> List[List[TreeNode]]:
    """Group all nodes of all trees by height (leaves first)."""
    levels: Dict[int, List[TreeNode]] = {}

    def height(node: TreeNode) -> int:
        h = 1 if node.is_leaf else 1 + max(height(node.left), height(node.right))
        levels.setdefault(h, []).append(node)
        return h

    for t in trees:
        height(t)
    return [levels[h] for h in sorted(levels)]


@dataclass
class CortexResult:
    outputs: List[np.ndarray]
    stats: RunStats


class CortexModel:
    """Hand-batched, level-synchronous execution of one supported model."""

    def __init__(
        self,
        model_name: str,
        params: Dict[str, np.ndarray],
        gpu_spec: Optional[GPUSpec] = None,
    ) -> None:
        if model_name not in SUPPORTED_MODELS:
            raise ValueError(
                f"Cortex supports only recursive models {SUPPORTED_MODELS}, not {model_name!r}"
            )
        self.model_name = model_name
        self.params = {k: np.asarray(v) for k, v in params.items()}
        self.gpu_spec = gpu_spec

    # -- public API ---------------------------------------------------------------
    def run(self, raw_instances: Sequence[Any]) -> Tuple[List[np.ndarray], RunStats]:
        device = DeviceSimulator(spec=self.gpu_spec, default_schedule_quality=0.97)
        start = time.perf_counter()
        if self.model_name == "treelstm":
            outputs = self._run_treelstm(raw_instances, device)
        elif self.model_name == "mvrnn":
            outputs = self._run_mvrnn(raw_instances, device)
        else:
            outputs = self._run_birnn(raw_instances, device)
        host_ms = (time.perf_counter() - start) * 1e3
        stats = RunStats(
            host_ms={"dfg_construction": host_ms, "scheduling": 0.0, "dispatch": 0.0},
            device=device.counters.as_dict(),
            num_dfg_nodes=0,
            num_batches=device.counters.num_kernel_launches,
            batch_size=len(raw_instances),
        )
        return outputs, stats

    # -- TreeLSTM -------------------------------------------------------------------
    def _run_treelstm(self, trees: Sequence[TreeNode], device: DeviceSimulator) -> List[np.ndarray]:
        p = self.params
        state: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        gates = ("i", "fl", "fr", "o", "u")
        for level in _collect_levels(trees):
            leaves = [n for n in level if n.is_leaf]
            nodes = [n for n in level if not n.is_leaf]
            if leaves:
                emb = np.concatenate([n.embedding for n in leaves], axis=0)
                h = np.tanh(emb @ p["leaf_wt"] + p["leaf_bias"])
                c = np.zeros_like(h)
                for k, n in enumerate(leaves):
                    state[id(n)] = (h[k : k + 1], c[k : k + 1])
                _charge(device, "cortex_leaf", [emb], 2.0 * emb.size * p["leaf_wt"].shape[1])
            if nodes:
                hl = np.concatenate([state[id(n.left)][0] for n in nodes], axis=0)
                hr = np.concatenate([state[id(n.right)][0] for n in nodes], axis=0)
                cl = np.concatenate([state[id(n.left)][1] for n in nodes], axis=0)
                cr = np.concatenate([state[id(n.right)][1] for n in nodes], axis=0)
                acts = {}
                for g in gates:
                    pre = hl @ p[f"{g}_l_wt"] + hr @ p[f"{g}_r_wt"] + p[f"{g}_bias"]
                    acts[g] = np.tanh(pre) if g == "u" else 1.0 / (1.0 + np.exp(-pre))
                c = acts["i"] * acts["u"] + acts["fl"] * cl + acts["fr"] * cr
                h = acts["o"] * np.tanh(c)
                for k, n in enumerate(nodes):
                    state[id(n)] = (h[k : k + 1], c[k : k + 1])
                flops = 2.0 * hl.shape[0] * hl.shape[1] * hl.shape[1] * 10
                _charge(device, "cortex_treelstm_cell", [hl, hr, cl, cr], flops)
        outs = []
        for t in trees:
            h_root = state[id(t)][0]
            outs.append(h_root @ p["cls_wt"] + p["cls_bias"])
        _charge(device, "cortex_classifier", [state[id(t)][0] for t in trees], 1e4)
        return outs

    # -- MV-RNN ---------------------------------------------------------------------
    def _run_mvrnn(self, instances: Sequence[Any], device: DeviceSimulator) -> List[np.ndarray]:
        """``instances`` are (tree, leaf_payload) structures produced by
        :func:`repro.models.mvrnn.instance_input`; we accept the ADT form and
        walk it directly."""
        p = self.params
        H = p["v_bias"].shape[1]

        def eval_node(adt) -> Tuple[np.ndarray, np.ndarray]:
            if adt.constructor.name == "MVLeaf":
                vec, mat = adt.fields
                # Cortex's restrictive interface requires copying every leaf
                # embedding matrix into its internal buffers (§7.3)
                device.memcpy(float(np.asarray(mat).nbytes + np.asarray(vec).nbytes))
                return np.asarray(vec).copy(), np.asarray(mat).copy()
            la, lA = eval_node(adt.fields[0])
            ra, rA = eval_node(adt.fields[1])
            c1, c2 = la @ rA, ra @ lA
            vec = np.tanh(np.concatenate([c1, c2], axis=1) @ p["v_wt"] + p["v_bias"])
            mat = np.concatenate([lA, rA], axis=1) @ p["m_wt"]
            _charge(device, "cortex_mvrnn_cell", [la, ra, lA, rA], 2.0 * (2 * H * H * H))
            return vec, mat

        outs = []
        for inst in instances:
            tree = inst["tree"] if isinstance(inst, dict) else inst
            vec, _ = eval_node(tree)
            outs.append(vec @ p["cls_wt"] + p["cls_bias"])
        _charge(device, "cortex_classifier", outs, 1e4)
        return outs

    # -- BiRNN ------------------------------------------------------------------------
    def _run_birnn(self, sequences: Sequence[List[np.ndarray]], device: DeviceSimulator) -> List[np.ndarray]:
        p = self.params
        B = len(sequences)
        lengths = [len(s) for s in sequences]
        max_len = max(lengths)
        H = p["f_h_wt"].shape[0]

        def run_direction(prefix: str, reverse: bool) -> List[List[np.ndarray]]:
            states = [[None] * n for n in lengths]
            cur = np.repeat(p[f"{prefix}_init"], B, axis=0)
            for t in range(max_len):
                tok_rows, active = [], []
                for b, seq in enumerate(sequences):
                    if t < lengths[b]:
                        idx = lengths[b] - 1 - t if reverse else t
                        tok_rows.append(seq[idx])
                        active.append(b)
                if not tok_rows:
                    break
                toks = np.concatenate(tok_rows, axis=0)
                prev = np.concatenate([cur[b : b + 1] for b in active], axis=0)
                new = 1.0 / (
                    1.0
                    + np.exp(
                        -(p[f"{prefix}_bias"] + toks @ p[f"{prefix}_i_wt"] + prev @ p[f"{prefix}_h_wt"])
                    )
                )
                for k, b in enumerate(active):
                    cur[b] = new[k]
                    idx = lengths[b] - 1 - t if reverse else t
                    states[b][idx] = new[k : k + 1]
                _charge(device, f"cortex_rnn_{prefix}", [toks, prev], 4.0 * toks.shape[0] * H * H)
            return states

        f_states = run_direction("f", reverse=False)
        b_states = run_direction("b", reverse=True)
        outs = []
        all_pairs = []
        for b in range(B):
            pairs = [
                np.concatenate([f, bk], axis=1) for f, bk in zip(f_states[b], b_states[b])
            ]
            all_pairs.extend(pairs)
            outs.append(
                [np.maximum(pr @ p["out_wt"] + p["out_bias"], 0.0) for pr in pairs]
            )
        _charge(device, "cortex_output", all_pairs, 2.0 * len(all_pairs) * 2 * H * p["out_wt"].shape[1])
        return outs
