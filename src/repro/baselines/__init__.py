"""Baseline systems the paper compares against."""

from .cortex import SUPPORTED_MODELS as CORTEX_SUPPORTED_MODELS
from .cortex import CortexModel
from .dynet import (
    DyNetImprovements,
    DyNetModel,
    DyNetScheduler,
    compile_dynet,
    dynet_compiler_options,
    run_best_of_schedulers,
)
from .eager import compile_eager

__all__ = [
    "CortexModel",
    "CORTEX_SUPPORTED_MODELS",
    "DyNetModel",
    "DyNetScheduler",
    "DyNetImprovements",
    "compile_dynet",
    "dynet_compiler_options",
    "run_best_of_schedulers",
    "compile_eager",
]
