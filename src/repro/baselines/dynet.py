"""DyNet-style dynamic-batching baseline (Neubig et al. 2017b).

The paper's main comparison point.  DyNet executes the unbatched program
lazily, building a per-operator dataflow graph, and discovers batching
opportunities *purely at runtime* with agenda- or depth-based scheduling
(Fig. 7 in the paper's appendix).  We reproduce its algorithm on the same
substrate as ACROBAT so that only the batching strategy differs:

* per-operator DFG nodes (no grain-size coarsening), no kernel fusion, no
  gather fusion (explicit memory gathers), no operator hoisting, no program
  phases — i.e. the compiler's ``all_off`` configuration;
* depths/agendas recomputed from the DFG at runtime (real host cost);
* DyNet's *heuristic* batching signatures (§7.3):
    - ``dense``/``matmul`` instances batch only when their first argument is
      literally the same tensor (true for weight matrices, false for
      products of intermediate activations as in MV-RNN);
    - ``argmax``, broadcasting element-wise multiplication (``scale``) and
      constant-tensor creation (``full``/``zeros``) never batch.

``DyNetImprovements`` reproduces the DN++ variant of Table 7 (heuristics
fixed by hand).  For models with tensor-dependent control flow the baseline
runs instances on interleaved fibers, which corresponds to the manual
batching-friendly restructuring DyNet programmers perform (§4.2); DyNet
still cannot exploit *instance* parallelism (no concurrent fibers).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..compiler.driver import CompiledModel, compile_module
from ..compiler.options import CompilerOptions
from ..ir.module import IRModule
from ..kernels.batched import BlockKernel
from ..runtime.device import GPUSpec
from ..runtime.executor import ExecutionOptions
from ..runtime.scheduler import (
    ScheduledBatch,
    agenda_schedule,
    dfg_deps,
    dynamic_depth_schedule,
)
from ..runtime.tensor import DFGNode, LazyTensor


@dataclass(frozen=True)
class DyNetImprovements:
    """The hand-fixes applied to DyNet in §7.3 / Table 7 (all False = stock
    DyNet, all True = DN++)."""

    #: batch matrix multiplications even when the first argument differs
    improved_matmul: bool = False
    #: support batched argmax
    batch_argmax: bool = False
    #: batch broadcasting element-wise multiplications
    batch_broadcast_mul: bool = False
    #: create reused constant tensors only once
    reuse_constants: bool = False
    #: manually exploit recursive instance parallelism (DRNN fix)
    instance_parallelism: bool = False

    @classmethod
    def stock(cls) -> "DyNetImprovements":
        return cls()

    @classmethod
    def improved(cls) -> "DyNetImprovements":
        return cls(
            improved_matmul=True,
            batch_argmax=True,
            batch_broadcast_mul=True,
            reuse_constants=True,
            instance_parallelism=True,
        )


#: operators DyNet cannot batch at all (stock heuristics)
_UNBATCHABLE_STOCK = {"argmax", "scale", "full", "zeros"}
#: operators batched only on identical first argument (weight matrices)
_FIRST_ARG_OPS = {"dense", "matmul"}


class DyNetScheduler:
    """Scheduler policy implementing DyNet's runtime-only batching.

    Registered in the engine's policy registry as ``"dynet"``; the former
    ``DyNetRuntime`` subclass is gone — the stock
    :class:`~repro.runtime.executor.AcrobatRuntime` drives this scheduler
    like any other policy, so DyNet and ACROBAT share every line of the
    execution machinery and differ only in where the schedule comes from.
    """

    def __init__(
        self,
        kernels: Dict[int, BlockKernel],
        improvements: Optional[DyNetImprovements] = None,
        kind: str = "agenda",
    ) -> None:
        if kind not in ("agenda", "depth"):
            raise ValueError("scheduler kind must be 'agenda' or 'depth'")
        self.kernels = kernels
        self.improvements = improvements or DyNetImprovements.stock()
        self.kind = kind

    # -- DyNet batching signature ------------------------------------------------
    def _signature(self, node: DFGNode) -> Hashable:
        kernel = self.kernels[node.block_id]
        ops = kernel.block.ops
        op_name = ops[0].op_name if len(ops) == 1 else None
        imp = self.improvements
        sig: Tuple = (node.block_id,)
        if op_name is None:
            return sig
        if op_name in _UNBATCHABLE_STOCK:
            if op_name == "argmax" and imp.batch_argmax:
                return sig
            if op_name == "scale" and imp.batch_broadcast_mul:
                return sig
            if op_name in ("full", "zeros") and imp.reuse_constants:
                return sig
            return sig + ("node", node.node_id)  # never batches
        if op_name in _FIRST_ARG_OPS and not imp.improved_matmul:
            first = node.args[0] if node.args else None
            key = id(first.node) if isinstance(first, LazyTensor) else id(first)
            return sig + ("first_arg", key)
        return sig

    # -- scheduling ------------------------------------------------------------------
    def schedule(self, nodes: Sequence[DFGNode]) -> List[ScheduledBatch]:
        if self.kind == "agenda":
            raw_batches = agenda_schedule(nodes, dfg_deps, self._signature)
        else:
            raw_batches = dynamic_depth_schedule(nodes, dfg_deps, self._signature)
        return [ScheduledBatch(block_id=b[0].block_id, nodes=b) for b in raw_batches]


@dataclass
class DyNetModel(CompiledModel):
    """A model executed with DyNet's runtime batching strategy."""

    improvements: DyNetImprovements = field(default_factory=DyNetImprovements.stock)
    scheduler_kind: str = "agenda"

    def _exec_options(self, policy: Optional[str] = None) -> ExecutionOptions:
        return ExecutionOptions(
            gather_fusion=False,        # DyNet performs explicit memory gathers
            scheduler=policy or "dynet",
            batch_memcpy=False,         # transfers are not coalesced
            validate=self.options.validate,
        )

    def _policy_args(self) -> Dict[str, Any]:
        return {"improvements": self.improvements, "kind": self.scheduler_kind}


def dynet_compiler_options(validate: bool = False) -> CompilerOptions:
    """The compiler configuration modelling DyNet's execution strategy:
    per-operator nodes, vendor-library-style unfused kernels, no static
    optimizations.  Function specialization stays on purely for correctness
    of the shared-argument classification (DyNet's lookup parameters play the
    same role)."""
    opts = CompilerOptions.all_off()
    return replace(opts, validate=validate)


def compile_dynet(
    module: IRModule,
    params: Mapping[str, np.ndarray],
    improvements: Optional[DyNetImprovements] = None,
    scheduler_kind: str = "agenda",
    gpu_spec: Optional[GPUSpec] = None,
    validate: bool = False,
) -> DyNetModel:
    """Compile ``module`` for execution under the DyNet baseline."""
    base = compile_module(module, params, dynet_compiler_options(validate), gpu_spec)
    kwargs = {f.name: getattr(base, f.name) for f in fields(CompiledModel)}
    return DyNetModel(
        **kwargs,
        improvements=improvements or DyNetImprovements.stock(),
        scheduler_kind=scheduler_kind,
    )


def run_best_of_schedulers(
    module: IRModule,
    params: Mapping[str, np.ndarray],
    instances: Sequence[Any],
    improvements: Optional[DyNetImprovements] = None,
    gpu_spec: Optional[GPUSpec] = None,
):
    """Run both DyNet scheduling strategies and return the faster result, as
    the paper does for Table 5 ("the best of the two scheduling schemes")."""
    best = None
    for kind in ("depth", "agenda"):
        model = compile_dynet(module, params, improvements, kind, gpu_spec)
        outputs, stats = model.run(instances)
        if best is None or stats.latency_ms < best[1].latency_ms:
            best = (outputs, stats, kind)
    return best
