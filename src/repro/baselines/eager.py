"""Eager, no-auto-batching baseline (the paper's PyTorch comparison, Fig. 5).

PyTorch executes the per-instance program eagerly: every operator is its own
kernel launch and there is no batching across instances or across
instance-parallel sub-computations.  We model this by interpreting the same
IR per instance and dispatching every operator as a batch of one against the
shared device simulator.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..ir.module import IRModule
from ..runtime.device import GPUSpec
from ..vm.interpreter import VMModel


def compile_eager(
    module: IRModule,
    params: Mapping[str, np.ndarray],
    gpu_spec: Optional[GPUSpec] = None,
) -> VMModel:
    """Build the eager (unbatched) execution baseline for ``module``."""
    return VMModel(
        module=module,
        params={k: np.asarray(v) for k, v in params.items()},
        gpu_spec=gpu_spec,
        gather_fusion=True,  # irrelevant: batches have size one
        batching=False,
    )
