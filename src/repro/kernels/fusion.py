"""Kernel fusion inside static blocks.

Two flavours, both from the paper:

* **Standard (producer-consumer) fusion** — elementwise / injective operators
  are merged into the kernel of the value they consume, so intermediates
  never round-trip through device memory and fewer kernels are launched
  (§7.4: "Standard kernel fusion provides significant benefits for all
  models").
* **Horizontal fusion** (§B.1, Fig. 9) — independent applications of the same
  operator inside one block that share an argument (e.g. the four gate
  projections of an LSTM cell reading the same input vector) are merged into
  a single wider kernel, so the shared operand is read once.

The result of fusion is a partition of the block's ops into
:class:`KernelGroup` objects; the batched executor launches one (simulated)
kernel per group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from .block import StaticBlock
from .registry import get_op


@dataclass
class KernelGroup:
    """A set of block ops executed as one fused kernel launch."""

    group_id: int
    op_indices: List[int]
    #: True when the group was formed by horizontal fusion of same-op calls
    horizontal: bool = False

    @property
    def size(self) -> int:
        return len(self.op_indices)


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def _groups_are_acyclic(block: StaticBlock, uf: _UnionFind) -> bool:
    """Check that the dependency graph between fusion groups has no cycle."""
    edges: Dict[int, Set[int]] = {}
    for j, bop in enumerate(block.ops):
        gj = uf.find(j)
        for dep in bop.op_indices():
            gd = uf.find(dep)
            if gd != gj:
                edges.setdefault(gj, set()).add(gd)
    # DFS cycle detection over group roots
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}

    def visit(g: int) -> bool:
        color[g] = GREY
        for nxt in edges.get(g, ()):  # g depends on nxt
            c = color.get(nxt, WHITE)
            if c == GREY:
                return False
            if c == WHITE and not visit(nxt):
                return False
        color[g] = BLACK
        return True

    roots = {uf.find(j) for j in range(len(block.ops))}
    return all(visit(g) for g in roots if color.get(g, WHITE) == WHITE)


def _would_create_cycle(block: StaticBlock, uf: _UnionFind, a: int, b: int) -> bool:
    """Would merging the groups of ``a`` and ``b`` create a cyclic dependency
    between kernel groups?  Checked by tentatively merging and testing."""
    ra, rb = uf.find(a), uf.find(b)
    if ra == rb:
        return False
    trial = _UnionFind(len(block.ops))
    trial.parent = list(uf.parent)
    trial.union(a, b)
    return not _groups_are_acyclic(block, trial)


def fuse_block(
    block: StaticBlock,
    enable_standard: bool = True,
    enable_horizontal: bool = True,
) -> List[KernelGroup]:
    """Partition ``block``'s ops into fused kernel groups.

    With both flags off every op becomes its own group (one kernel launch per
    operator, as in vendor-library based execution).
    """
    n = len(block.ops)
    uf = _UnionFind(n)
    consumers = block.consumers()

    if enable_standard:
        # Merge each elementwise/injective op into its (single-group) producer.
        for j, bop in enumerate(block.ops):
            opdef = get_op(bop.op_name)
            if not (opdef.is_elementwise or opdef.is_injective):
                continue
            producer_ops = bop.op_indices()
            if not producer_ops:
                continue
            # fuse with the first producer; additional producers are fused too
            # when they are elementwise chains feeding only this op
            target = producer_ops[0]
            if not _would_create_cycle(block, uf, target, j):
                uf.union(target, j)
            for extra in producer_ops[1:]:
                extra_def = get_op(block.ops[extra].op_name)
                if (
                    (extra_def.is_elementwise or extra_def.is_injective)
                    and consumers[extra] == [j]
                    and not _would_create_cycle(block, uf, extra, j)
                ):
                    uf.union(extra, j)

    if enable_horizontal:
        # Merge independent same-op calls that share an argument.
        by_signature: Dict[Tuple[str, Tuple], List[int]] = {}
        for j, bop in enumerate(block.ops):
            opdef = get_op(bop.op_name)
            if opdef.is_elementwise or opdef.is_injective or opdef.kind != "tensor":
                continue
            for arg in bop.args:
                key = (bop.op_name, arg)
                by_signature.setdefault(key, []).append(j)
        for (_, _), indices in by_signature.items():
            if len(indices) < 2:
                continue
            # only merge ops with no dependency between them
            indices = sorted(indices)
            base = indices[0]
            for j in indices[1:]:
                if _depends_on(block, j, base) or _depends_on(block, base, j):
                    continue
                if not _would_create_cycle(block, uf, base, j):
                    uf.union(base, j)

    groups: Dict[int, List[int]] = {}
    for j in range(n):
        groups.setdefault(uf.find(j), []).append(j)

    # order groups so that every group runs after the groups it depends on
    group_deps: Dict[int, Set[int]] = {root: set() for root in groups}
    for j, bop in enumerate(block.ops):
        gj = uf.find(j)
        for dep in bop.op_indices():
            gd = uf.find(dep)
            if gd != gj:
                group_deps[gj].add(gd)
    ordered_roots: List[int] = []
    placed: Set[int] = set()
    remaining = sorted(groups)
    while remaining:
        progressed = False
        for root in list(remaining):
            if group_deps[root] <= placed:
                ordered_roots.append(root)
                placed.add(root)
                remaining.remove(root)
                progressed = True
        if not progressed:  # pragma: no cover - fusion never builds cycles
            raise RuntimeError(f"cyclic kernel-fusion groups in block {block.name}")

    out: List[KernelGroup] = []
    for gid, root in enumerate(ordered_roots):
        members = sorted(groups[root])
        names = {block.ops[j].op_name for j in members}
        horizontal = len(members) > 1 and len(names) == 1 and not get_op(
            block.ops[members[0]].op_name
        ).is_elementwise
        out.append(KernelGroup(gid, members, horizontal=horizontal))
    return out


def _depends_on(block: StaticBlock, consumer: int, producer: int) -> bool:
    """Transitive dependency check between two ops in a block."""
    stack = [consumer]
    seen: Set[int] = set()
    while stack:
        j = stack.pop()
        if j == producer:
            return True
        if j in seen:
            continue
        seen.add(j)
        stack.extend(block.ops[j].op_indices())
    return False


def group_launch_count(groups: Sequence[KernelGroup]) -> int:
    """Number of kernel launches a block costs per batched execution."""
    return len(groups)


def fused_kernel_name(block: StaticBlock, group: KernelGroup) -> str:
    """Human-readable name of a fused kernel, e.g. ``dense_add_sigmoid``."""
    names = [block.ops[j].op_name for j in group.op_indices]
    if group.horizontal:
        return f"h{len(names)}x_{names[0]}"
    if len(names) > 4:
        return f"{names[0]}_fused{len(names)}"
    return "_".join(names)
