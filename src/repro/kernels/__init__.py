"""Tensor-kernel layer: operator registry, static blocks, fusion, batched
kernel generation and auto-scheduling."""

from .batched import BatchedOperand, BatchedOutput, BlockKernel, LaunchRecord
from .block import (
    ArgRef,
    BlockInput,
    BlockOp,
    StaticBlock,
    const_ref,
    input_ref,
    op_ref,
    single_op_block,
)
from .fusion import KernelGroup, fuse_block, fused_kernel_name
from .registry import OpDef, all_ops, get_op, has_op, register
from .specialized import CompiledBlockProgram

__all__ = [
    "OpDef",
    "register",
    "get_op",
    "has_op",
    "all_ops",
    "StaticBlock",
    "BlockInput",
    "BlockOp",
    "ArgRef",
    "input_ref",
    "op_ref",
    "const_ref",
    "single_op_block",
    "KernelGroup",
    "fuse_block",
    "fused_kernel_name",
    "BlockKernel",
    "BatchedOperand",
    "BatchedOutput",
    "LaunchRecord",
    "CompiledBlockProgram",
]
