"""Batched execution of static blocks.

A :class:`BlockKernel` is the runtime form of one static block: its fusion
groups, its shared/varying input signature and the NumPy code that applies
the block to a whole batch of DFG nodes at once.

Execution semantics
-------------------
Given ``B`` DFG nodes for the same block at the same (phase, depth):

* *shared* inputs are model parameters/constants — one array, reused across
  the whole batch (parameter-reuse analysis, §5.1);
* *varying* inputs carry per-instance values — they are stacked into a
  leading batch dimension (this stacking is the *memory gather*; whether it
  is a separate gather launch or fused into the kernel is decided by the
  gather-fusion option, §5.2);
* each fusion group becomes one (simulated) kernel launch and reports a
  :class:`LaunchRecord` so the device simulator can charge launch overhead,
  memory traffic and FLOPs.

Numerical results always come from NumPy, so batched execution is checked
against the unbatched reference in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .block import StaticBlock
from .fusion import KernelGroup, fuse_block, fused_kernel_name
from .registry import get_op


@dataclass
class LaunchRecord:
    """Cost-relevant facts about one batched kernel launch."""

    kernel_name: str
    batch_size: int
    flops: float
    bytes_read: float
    bytes_written: float
    #: bytes of varying operands that were *not* contiguous in device memory;
    #: with gather fusion these are read through indirect addressing, without
    #: it they require a separate explicit gather launch (see executor).
    scattered_bytes: float = 0.0
    is_gather: bool = False


def _nbytes(arr: np.ndarray) -> float:
    return float(np.asarray(arr).nbytes)


@dataclass
class _Value:
    """A value flowing through batched block execution."""

    array: np.ndarray
    batched: bool  # leading dim is the batch dimension


def _adjust_attrs(op_name: str, attrs: Dict[str, Any], batched: bool) -> Dict[str, Any]:
    """Shift axis-like attributes when a leading batch dimension is present."""
    if not batched:
        return attrs
    out = dict(attrs)
    if op_name in ("concat", "softmax", "argmax", "sum", "mean"):
        axis = out.get("axis", -1)
        if isinstance(axis, int) and axis >= 0:
            out["axis"] = axis + 1
    elif op_name == "transpose":
        out["axes"] = [0] + [a + 1 for a in out["axes"]]
    return out


class BlockKernel:
    """Executable batched form of one static block."""

    def __init__(
        self,
        block: StaticBlock,
        enable_fusion: bool = True,
        enable_horizontal_fusion: bool = True,
    ) -> None:
        self.block = block
        self.groups: List[KernelGroup] = fuse_block(
            block, enable_standard=enable_fusion, enable_horizontal=enable_horizontal_fusion
        )
        self._group_of_op: Dict[int, int] = {}
        for g in self.groups:
            for j in g.op_indices:
                self._group_of_op[j] = g.group_id
        self.group_names = [fused_kernel_name(block, g) for g in self.groups]

    # -- introspection -------------------------------------------------------
    @property
    def name(self) -> str:
        return self.block.name

    @property
    def num_launches(self) -> int:
        """Kernel launches per batched execution of this block."""
        return len(self.groups)

    def kernel_names(self) -> List[str]:
        return list(self.group_names)

    # -- execution ------------------------------------------------------------
    def execute_batched(
        self,
        args: Sequence[Any],
        batch_size: int,
        scattered_mask: Optional[Sequence[bool]] = None,
    ) -> Tuple[List[List[np.ndarray]], List[LaunchRecord]]:
        """Run the block for a whole batch.

        Parameters
        ----------
        args:
            One entry per block input.  Shared inputs: a single ``ndarray``.
            Varying inputs: a list of ``batch_size`` arrays.
        batch_size:
            Number of DFG nodes batched together.
        scattered_mask:
            Optional per-input flags: True when the varying operand's
            per-instance tensors are *not* contiguous in device memory
            (affects gather accounting only, not numerics).

        Returns
        -------
        (outputs, launches):
            ``outputs[k][b]`` is output ``k`` of instance ``b`` (a shared,
            non-batched output is replicated by reference).  ``launches`` are
            the per-fusion-group cost records.
        """
        block = self.block
        scattered_mask = list(scattered_mask or [False] * len(block.inputs))

        values: Dict[Tuple[str, int], _Value] = {}
        gather_bytes_by_input: Dict[int, float] = {}

        for inp in block.inputs:
            arg = args[inp.index]
            if inp.shared:
                values[("input", inp.index)] = _Value(np.asarray(arg), batched=False)
            else:
                arrs = [np.asarray(a) for a in arg]
                if len(arrs) != batch_size:
                    raise ValueError(
                        f"block {block.name}: varying input {inp.name} got "
                        f"{len(arrs)} values for batch size {batch_size}"
                    )
                stacked = np.stack(arrs, axis=0)
                values[("input", inp.index)] = _Value(stacked, batched=True)
                gather_bytes_by_input[inp.index] = _nbytes(stacked)

        launches: List[LaunchRecord] = []

        for group in self.groups:
            flops = 0.0
            bytes_read = 0.0
            bytes_written = 0.0
            scattered_bytes = 0.0
            external_reads: set = set()

            for j in group.op_indices:
                bop = block.ops[j]
                opdef = get_op(bop.op_name)
                arg_vals: List[_Value] = []
                for kind, ref in bop.args:
                    if kind == "const":
                        arg_vals.append(_Value(np.asarray(ref), batched=False))
                    else:
                        arg_vals.append(values[(kind, ref)])
                        # account external reads (values produced outside this group)
                        if kind == "input" or self._group_of_op.get(ref) != group.group_id:
                            if (kind, ref) not in external_reads:
                                external_reads.add((kind, ref))
                                nb = _nbytes(arg_vals[-1].array)
                                bytes_read += nb
                                if kind == "input" and scattered_mask[ref] and not block.inputs[ref].shared:
                                    scattered_bytes += nb

                any_batched = any(v.batched for v in arg_vals)
                attrs = _adjust_attrs(bop.op_name, bop.attrs, any_batched)
                arrays = [v.array for v in arg_vals]
                if any_batched and bop.op_name == "concat":
                    # concatenation requires every operand to carry the batch
                    # dimension; broadcast shared operands across the batch
                    arrays = [
                        a if v.batched else np.broadcast_to(a, (batch_size,) + a.shape)
                        for a, v in zip(arrays, arg_vals)
                    ]
                if bop.op_name == "reshape" and any_batched:
                    attrs = dict(attrs)
                    attrs["newshape"] = [batch_size] + list(attrs["newshape"])
                if bop.op_name == "take_row" and any_batched:
                    result = arrays[0][:, int(attrs["index"])]
                else:
                    fn = opdef.batched if (any_batched and opdef.batched is not None) else opdef.compute
                    result = fn(*arrays, **attrs)
                result = np.asarray(result)
                out_batched = any_batched
                values[("op", j)] = _Value(result, batched=out_batched)

                per_instance_shapes = [
                    (v.array.shape[1:] if v.batched else v.array.shape) for v in arg_vals
                ]
                per_flops = opdef.estimate_flops(per_instance_shapes, bop.attrs)
                flops += per_flops * (batch_size if any_batched else 1)

            for j in group.op_indices:
                if block.op_is_output(j) or any(
                    self._group_of_op.get(c) != group.group_id for c in block.consumers()[j]
                ):
                    bytes_written += _nbytes(values[("op", j)].array)

            launches.append(
                LaunchRecord(
                    kernel_name=self.group_names[group.group_id],
                    batch_size=batch_size,
                    flops=flops,
                    bytes_read=bytes_read,
                    bytes_written=bytes_written,
                    scattered_bytes=scattered_bytes,
                )
            )

        outputs: List[List[np.ndarray]] = []
        for kind, ref in block.outputs:
            val = values[(kind, ref)]
            if val.batched:
                outputs.append([val.array[b] for b in range(batch_size)])
            else:
                outputs.append([val.array] * batch_size)
        return outputs, launches

    def execute_single(self, args: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Unbatched reference execution of the block for one instance."""
        values: Dict[Tuple[str, int], np.ndarray] = {}
        for inp in self.block.inputs:
            values[("input", inp.index)] = np.asarray(args[inp.index])
        for bop in self.block.ops:
            opdef = get_op(bop.op_name)
            arrays = []
            for kind, ref in bop.args:
                arrays.append(np.asarray(ref) if kind == "const" else values[(kind, ref)])
            values[("op", bop.index)] = np.asarray(opdef.compute(*arrays, **bop.attrs))
        return [values[(kind, ref)] for kind, ref in self.block.outputs]
