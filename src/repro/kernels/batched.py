"""Batched execution of static blocks.

A :class:`BlockKernel` is the runtime form of one static block: its fusion
groups, its shared/varying input signature and the NumPy code that applies
the block to a whole batch of DFG nodes at once.

Execution semantics
-------------------
Given ``B`` DFG nodes for the same block at the same (phase, depth):

* *shared* inputs are model parameters/constants — one array, reused across
  the whole batch (parameter-reuse analysis, §5.1);
* *varying* inputs carry per-instance values with a leading batch dimension.
  The memory planner (:mod:`repro.memory`) decides how that batched form is
  obtained: a zero-copy arena view when the operands are already contiguous
  in device memory, an explicit gather launch, or a gather fused into the
  kernel (§5.2) — in which case the kernel itself stacks the scattered parts
  and reports them as ``scattered_bytes``;
* each fusion group becomes one (simulated) kernel launch and reports a
  :class:`LaunchRecord` so the device simulator can charge launch overhead,
  memory traffic and FLOPs.

Kernels consume :class:`BatchedOperand` descriptors (views, not lists of
per-instance arrays); raw arrays / lists are still accepted for direct use
in tests and are normalized on entry.  Numerical results always come from
NumPy, so batched execution is checked against the unbatched reference in
the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .block import StaticBlock
from .fusion import KernelGroup, fuse_block, fused_kernel_name
from .registry import get_op


@dataclass
class LaunchRecord:
    """Cost-relevant facts about one batched kernel launch."""

    kernel_name: str
    batch_size: int
    flops: float
    bytes_read: float
    bytes_written: float
    #: bytes of varying operands that were *not* contiguous in device memory;
    #: with gather fusion these are read through indirect addressing, without
    #: it they require a separate explicit gather launch (see the planner).
    scattered_bytes: float = 0.0
    is_gather: bool = False


class BatchedOperand:
    """One block input in the form the batched kernel consumes it.

    Exactly one of ``array`` / ``parts`` is set:

    * ``array`` — the ready batched value: for shared inputs the single
      parameter array, for varying inputs a ``[B, ...]`` array (a zero-copy
      arena view for contiguous operands);
    * ``parts`` — per-instance tensors the kernel stacks itself: the output
      of an explicit gather launch (``scattered=False`` — already charged by
      the planner), or a gather fused into the kernel (``scattered=True`` —
      the read is accounted as scattered bytes on the launch records).
      Entries are ``ndarray``\\ s (host values) or arena storage refs with an
      ``.array`` view (:class:`~repro.memory.arena.TensorStorage`).
    """

    __slots__ = ("shared", "array", "parts", "scattered")

    def __init__(
        self,
        shared: bool,
        array: Optional[np.ndarray] = None,
        parts: Optional[List[np.ndarray]] = None,
        scattered: bool = False,
    ) -> None:
        self.shared = shared
        self.array = array
        self.parts = parts
        self.scattered = scattered

    @classmethod
    def shared_value(cls, array: np.ndarray) -> "BatchedOperand":
        return cls(shared=True, array=np.asarray(array))

    @classmethod
    def batched(cls, array: np.ndarray) -> "BatchedOperand":
        """A varying operand already contiguous in device memory."""
        return cls(shared=False, array=np.asarray(array))

    @classmethod
    def scattered_parts(cls, parts: Sequence[np.ndarray]) -> "BatchedOperand":
        """A varying operand whose gather is fused into the kernel."""
        return cls(shared=False, parts=[np.asarray(p) for p in parts], scattered=True)


class BatchedOutput:
    """One block output of a batched execution.

    ``array`` is the batched ``[B, ...]`` result when ``batched`` is true;
    otherwise it is a single shared (non-batched) array logically replicated
    across the batch.  Sequence access returns instance views either way, so
    ``outputs[k][b]`` is output ``k`` of instance ``b``.
    """

    __slots__ = ("array", "batched", "batch_size")

    def __init__(self, array: np.ndarray, batched: bool, batch_size: int) -> None:
        self.array = array
        self.batched = batched
        self.batch_size = batch_size

    def __len__(self) -> int:
        return self.batch_size

    def __getitem__(self, b: int) -> np.ndarray:
        return self.array[b] if self.batched else self.array

    def __iter__(self):
        return (self[b] for b in range(self.batch_size))


def _nbytes(arr: np.ndarray) -> float:
    return float(np.asarray(arr).nbytes)


@dataclass
class _Value:
    """A value flowing through batched block execution."""

    array: np.ndarray
    batched: bool  # leading dim is the batch dimension


def _adjust_attrs(op_name: str, attrs: Dict[str, Any], batched: bool) -> Dict[str, Any]:
    """Shift axis-like attributes when a leading batch dimension is present."""
    if not batched:
        return attrs
    out = dict(attrs)
    if op_name in ("concat", "softmax", "argmax", "sum", "mean"):
        axis = out.get("axis", -1)
        if isinstance(axis, int) and axis >= 0:
            out["axis"] = axis + 1
    elif op_name == "transpose":
        out["axes"] = [0] + [a + 1 for a in out["axes"]]
    return out


class BlockKernel:
    """Executable batched form of one static block."""

    def __init__(
        self,
        block: StaticBlock,
        enable_fusion: bool = True,
        enable_horizontal_fusion: bool = True,
    ) -> None:
        self.block = block
        self.groups: List[KernelGroup] = fuse_block(
            block, enable_standard=enable_fusion, enable_horizontal=enable_horizontal_fusion
        )
        self._group_of_op: Dict[int, int] = {}
        for g in self.groups:
            for j in g.op_indices:
                self._group_of_op[j] = g.group_id
        self.group_names = [fused_kernel_name(block, g) for g in self.groups]
        #: flattened specialized programs memoized per batch size (the
        #: specialization tier's dispatch closures live behind the kernel,
        #: so the generic path above stays the correctness oracle)
        self._specialized_programs: Dict[int, Any] = {}

    # -- introspection -------------------------------------------------------
    @property
    def name(self) -> str:
        return self.block.name

    @property
    def num_launches(self) -> int:
        """Kernel launches per batched execution of this block."""
        return len(self.groups)

    def kernel_names(self) -> List[str]:
        return list(self.group_names)

    def specialized_program(self, batch_size: int):
        """The flattened dispatch program for this block at one batch size
        (:class:`~repro.kernels.specialized.CompiledBlockProgram`), compiled
        on first request and shared by every specialization entry with this
        ``(block, batch_size)`` shape."""
        program = self._specialized_programs.get(batch_size)
        if program is None:
            from .specialized import CompiledBlockProgram

            program = CompiledBlockProgram(self, batch_size)
            self._specialized_programs[batch_size] = program
        return program

    # -- operand normalization -------------------------------------------------
    def _normalize_operand(self, inp, arg: Any, batch_size: int) -> BatchedOperand:
        """Accept raw arrays (shared) / lists of arrays (varying) alongside
        planner-produced :class:`BatchedOperand` descriptors."""
        if isinstance(arg, BatchedOperand):
            return arg
        if inp.shared:
            return BatchedOperand.shared_value(arg)
        arrs = [np.asarray(a) for a in arg]
        if len(arrs) != batch_size:
            raise ValueError(
                f"block {self.block.name}: varying input {inp.name} got "
                f"{len(arrs)} values for batch size {batch_size}"
            )
        return BatchedOperand.batched(np.stack(arrs, axis=0))

    # -- execution ------------------------------------------------------------
    def execute_batched(
        self,
        args: Sequence[Any],
        batch_size: int,
    ) -> Tuple[List[BatchedOutput], List[LaunchRecord]]:
        """Run the block for a whole batch.

        Parameters
        ----------
        args:
            One entry per block input: a :class:`BatchedOperand` (the memory
            planner's resolved form), or — for direct callers — a single
            ``ndarray`` for shared inputs / a list of ``batch_size`` arrays
            for varying inputs.
        batch_size:
            Number of DFG nodes batched together.

        Returns
        -------
        (outputs, launches):
            ``outputs[k]`` is a :class:`BatchedOutput` (``outputs[k][b]`` is
            output ``k`` of instance ``b``); ``launches`` are the
            per-fusion-group cost records.
        """
        block = self.block
        operands = [
            self._normalize_operand(inp, args[inp.index], batch_size)
            for inp in block.inputs
        ]

        values: Dict[Tuple[str, int], _Value] = {}
        scattered_inputs = [False] * len(block.inputs)

        for inp in block.inputs:
            op = operands[inp.index]
            if inp.shared:
                values[("input", inp.index)] = _Value(np.asarray(op.array), batched=False)
                continue
            if op.array is not None:
                stacked = np.asarray(op.array)
                if stacked.shape[0] != batch_size:
                    raise ValueError(
                        f"block {block.name}: varying input {inp.name} got batch "
                        f"dimension {stacked.shape[0]} for batch size {batch_size}"
                    )
            else:
                # the kernel performs the gather: realize the per-instance
                # storage refs and stack them (this read is device work — an
                # explicit gather launch already charged by the planner, or
                # scattered bytes accounted on this kernel's launch records)
                if len(op.parts) != batch_size:
                    raise ValueError(
                        f"block {block.name}: varying input {inp.name} got "
                        f"{len(op.parts)} values for batch size {batch_size}"
                    )
                stacked = np.stack(
                    [p if isinstance(p, np.ndarray) else p.array for p in op.parts],
                    axis=0,
                )
            scattered_inputs[inp.index] = op.scattered
            values[("input", inp.index)] = _Value(stacked, batched=True)

        launches: List[LaunchRecord] = []

        for group in self.groups:
            flops = 0.0
            bytes_read = 0.0
            bytes_written = 0.0
            scattered_bytes = 0.0
            external_reads: set = set()

            for j in group.op_indices:
                bop = block.ops[j]
                opdef = get_op(bop.op_name)
                arg_vals: List[_Value] = []
                for kind, ref in bop.args:
                    if kind == "const":
                        arg_vals.append(_Value(np.asarray(ref), batched=False))
                    else:
                        arg_vals.append(values[(kind, ref)])
                        # account external reads (values produced outside this group)
                        if kind == "input" or self._group_of_op.get(ref) != group.group_id:
                            if (kind, ref) not in external_reads:
                                external_reads.add((kind, ref))
                                nb = _nbytes(arg_vals[-1].array)
                                bytes_read += nb
                                if kind == "input" and scattered_inputs[ref]:
                                    scattered_bytes += nb

                any_batched = any(v.batched for v in arg_vals)
                attrs = _adjust_attrs(bop.op_name, bop.attrs, any_batched)
                arrays = [v.array for v in arg_vals]
                if any_batched and bop.op_name == "concat":
                    # concatenation requires every operand to carry the batch
                    # dimension; broadcast shared operands across the batch
                    arrays = [
                        a if v.batched else np.broadcast_to(a, (batch_size,) + a.shape)
                        for a, v in zip(arrays, arg_vals)
                    ]
                if bop.op_name == "reshape" and any_batched:
                    attrs = dict(attrs)
                    attrs["newshape"] = [batch_size] + list(attrs["newshape"])
                if bop.op_name == "take_row" and any_batched:
                    result = arrays[0][:, int(attrs["index"])]
                else:
                    fn = opdef.batched if (any_batched and opdef.batched is not None) else opdef.compute
                    result = fn(*arrays, **attrs)
                result = np.asarray(result)
                out_batched = any_batched
                values[("op", j)] = _Value(result, batched=out_batched)

                per_instance_shapes = [
                    (v.array.shape[1:] if v.batched else v.array.shape) for v in arg_vals
                ]
                per_flops = opdef.estimate_flops(per_instance_shapes, bop.attrs)
                flops += per_flops * (batch_size if any_batched else 1)

            for j in group.op_indices:
                if block.op_is_output(j) or any(
                    self._group_of_op.get(c) != group.group_id for c in block.consumers()[j]
                ):
                    bytes_written += _nbytes(values[("op", j)].array)

            launches.append(
                LaunchRecord(
                    kernel_name=self.group_names[group.group_id],
                    batch_size=batch_size,
                    flops=flops,
                    bytes_read=bytes_read,
                    bytes_written=bytes_written,
                    scattered_bytes=scattered_bytes,
                )
            )

        outputs: List[BatchedOutput] = []
        for kind, ref in block.outputs:
            val = values[(kind, ref)]
            outputs.append(BatchedOutput(val.array, batched=val.batched, batch_size=batch_size))
        return outputs, launches

    def execute_single(self, args: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Unbatched reference execution of the block for one instance."""
        values: Dict[Tuple[str, int], np.ndarray] = {}
        for inp in self.block.inputs:
            values[("input", inp.index)] = np.asarray(args[inp.index])
        for bop in self.block.ops:
            opdef = get_op(bop.op_name)
            arrays = []
            for kind, ref in bop.args:
                arrays.append(np.asarray(ref) if kind == "const" else values[(kind, ref)])
            values[("op", bop.index)] = np.asarray(opdef.compute(*arrays, **bop.attrs))
        return [values[(kind, ref)] for kind, ref in self.block.outputs]
