"""Static blocks: control-flow-free sub-graphs of tensor operators.

§2.1 observes that dynamic control flow *surrounds* static sub-graphs of
tensor operators (e.g. one TreeLSTM cell).  ACROBAT schedules at the
granularity of these blocks ("grain size coarsening", §A.2) and generates
one batched kernel per block.  A :class:`StaticBlock` is the compiler-facing
description of such a sub-graph:

* ``inputs``  — external values flowing into the block, each annotated by the
  taint analysis as *shared* (same array across batch instances, e.g. a
  weight) or *varying* (per-instance).
* ``ops``     — the primitive operator applications in topological order,
  referring to inputs/other ops via :class:`ArgRef`.
* ``outputs`` — which values escape the block.

Blocks are extracted by :mod:`repro.analysis.blocks`; grouping of ops into
fused kernels is done by :mod:`repro.kernels.fusion`; batched execution by
:mod:`repro.kernels.batched`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


# An ArgRef is ("input", i), ("op", j) or ("const", ndarray/scalar).
ArgRef = Tuple[str, Any]


def input_ref(i: int) -> ArgRef:
    return ("input", i)


def op_ref(j: int) -> ArgRef:
    return ("op", j)


def const_ref(value: Any) -> ArgRef:
    return ("const", value)


@dataclass
class BlockInput:
    """One external input of a static block."""

    index: int
    name: str
    #: filled by the parameter-reuse (taint) analysis; shared inputs are model
    #: parameters / constants identical across all instances in a mini-batch
    shared: bool = False
    #: optional static shape (informational; the executor measures real shapes)
    shape: Optional[Tuple[int, ...]] = None


@dataclass
class BlockOp:
    """One primitive operator application inside a block."""

    index: int
    op_name: str
    args: List[ArgRef]
    attrs: Dict[str, Any] = field(default_factory=dict)

    def input_indices(self) -> List[int]:
        return [a[1] for a in self.args if a[0] == "input"]

    def op_indices(self) -> List[int]:
        return [a[1] for a in self.args if a[0] == "op"]


@dataclass
class StaticBlock:
    """A control-flow-free tensor sub-graph scheduled as one unit."""

    block_id: int
    name: str
    inputs: List[BlockInput]
    ops: List[BlockOp]
    outputs: List[ArgRef]

    def validate(self) -> None:
        """Internal consistency checks (cheap; used by tests and the compiler
        in debug mode)."""
        n_inputs, n_ops = len(self.inputs), len(self.ops)
        for i, inp in enumerate(self.inputs):
            if inp.index != i:
                raise ValueError(f"block {self.name}: input {i} has index {inp.index}")
        for j, bop in enumerate(self.ops):
            if bop.index != j:
                raise ValueError(f"block {self.name}: op {j} has index {bop.index}")
            for kind, ref in bop.args:
                if kind == "input" and not (0 <= ref < n_inputs):
                    raise ValueError(f"block {self.name}: op {j} references input {ref}")
                if kind == "op" and not (0 <= ref < j):
                    raise ValueError(
                        f"block {self.name}: op {j} references op {ref} (not topological)"
                    )
        for kind, ref in self.outputs:
            if kind == "op" and not (0 <= ref < n_ops):
                raise ValueError(f"block {self.name}: output references op {ref}")
            if kind == "input" and not (0 <= ref < n_inputs):
                raise ValueError(f"block {self.name}: output references input {ref}")

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    def shared_mask(self) -> List[bool]:
        """Per-input shared/varying flags."""
        return [inp.shared for inp in self.inputs]

    def consumers(self) -> Dict[int, List[int]]:
        """Map op index -> list of op indices that consume its output."""
        out: Dict[int, List[int]] = {j: [] for j in range(len(self.ops))}
        for bop in self.ops:
            for j in bop.op_indices():
                out[j].append(bop.index)
        return out

    def op_is_output(self, j: int) -> bool:
        return any(kind == "op" and ref == j for kind, ref in self.outputs)

    def __repr__(self) -> str:
        ops = ",".join(o.op_name for o in self.ops)
        return f"StaticBlock({self.name}, inputs={len(self.inputs)}, ops=[{ops}])"


def single_op_block(
    block_id: int,
    op_name: str,
    num_inputs: int,
    attrs: Optional[Dict[str, Any]] = None,
    shared: Optional[Sequence[bool]] = None,
    name: Optional[str] = None,
) -> StaticBlock:
    """Build a block wrapping a single operator (used when grain-size
    coarsening is disabled and by unit tests)."""
    inputs = [
        BlockInput(i, f"arg{i}", shared=bool(shared[i]) if shared else False)
        for i in range(num_inputs)
    ]
    bop = BlockOp(0, op_name, [input_ref(i) for i in range(num_inputs)], dict(attrs or {}))
    return StaticBlock(
        block_id=block_id,
        name=name or f"{op_name}_{block_id}",
        inputs=inputs,
        ops=[bop],
        outputs=[op_ref(0)],
    )
