"""Primitive tensor-operator registry.

Every operator the IR can call is described by an :class:`OpDef`:

* ``compute``      — unbatched NumPy semantics (one model instance).
* ``batched``      — vectorized semantics over a leading batch dimension.
  Arguments flagged *varying* carry the batch dimension; *shared* arguments
  (model parameters identified by the taint analysis, §5.1) do not and are
  reused across the whole batch.
* ``infer_shape``  — static shape inference used by the cost model and the
  batched-kernel generator.
* ``flops``        — arithmetic cost estimate for the device simulator.
* ``kind``         — ``"tensor"`` (a DFG node), ``"host"`` (evaluated inline
  by the generated code, e.g. scalar comparisons) or ``"sync"`` (forces DFG
  execution: reading a tensor value back to the host, §4.2).

Operators are registered at import time; :func:`get_op` / :func:`has_op` are
the lookup API used by the compiler, runtime, VM and baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

Shape = Tuple[int, ...]


def _prod(shape: Sequence[int]) -> int:
    n = 1
    for s in shape:
        n *= int(s)
    return n


@dataclass
class OpDef:
    """Description of one primitive operator."""

    name: str
    compute: Callable[..., Any]
    infer_shape: Callable[[List[Shape], Dict[str, Any]], Shape]
    batched: Optional[Callable[..., Any]] = None
    flops: Optional[Callable[[List[Shape], Dict[str, Any]], float]] = None
    kind: str = "tensor"  # "tensor" | "host" | "sync"
    is_elementwise: bool = False
    is_injective: bool = False  # cheap data-movement ops (reshape/transpose/...)
    arity: Optional[int] = None  # None = variadic
    out_dtype: str = "float32"

    def estimate_flops(self, arg_shapes: List[Shape], attrs: Dict[str, Any]) -> float:
        """FLOP estimate for one unbatched application."""
        if self.flops is not None:
            return float(self.flops(arg_shapes, attrs))
        try:
            return float(_prod(self.infer_shape(arg_shapes, attrs)))
        except Exception:
            return 0.0


_REGISTRY: Dict[str, OpDef] = {}


def register(opdef: OpDef) -> OpDef:
    """Register an operator definition (overwrites any previous one)."""
    _REGISTRY[opdef.name] = opdef
    return opdef


def get_op(name: str) -> OpDef:
    """Look up an operator; raises ``KeyError`` with a helpful message."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown operator '{name}'; known: {sorted(_REGISTRY)}"
        ) from None


def has_op(name: str) -> bool:
    return name in _REGISTRY


def all_ops() -> Dict[str, OpDef]:
    """A copy of the registry mapping (name -> OpDef)."""
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# shape-inference helpers
# ---------------------------------------------------------------------------


def _broadcast_shape(shapes: List[Shape], attrs: Dict[str, Any]) -> Shape:
    out = np.broadcast_shapes(*shapes) if shapes else ()
    return tuple(int(s) for s in out)


def _same_as_first(shapes: List[Shape], attrs: Dict[str, Any]) -> Shape:
    return tuple(shapes[0])


def _elementwise_flops(shapes: List[Shape], attrs: Dict[str, Any]) -> float:
    return float(_prod(_broadcast_shape(shapes, attrs)))


def _register_elementwise(name: str, fn: Callable, unary: bool = False, cost: float = 1.0) -> None:
    arity = 1 if unary else 2

    def compute(*args, **attrs):
        return fn(*args)

    register(
        OpDef(
            name=name,
            compute=compute,
            batched=compute,
            infer_shape=_broadcast_shape,
            flops=lambda shapes, attrs, c=cost: c * _elementwise_flops(shapes, attrs),
            is_elementwise=True,
            arity=arity,
        )
    )


# ---------------------------------------------------------------------------
# elementwise arithmetic and activations
# ---------------------------------------------------------------------------

_register_elementwise("add", lambda a, b: a + b)
_register_elementwise("sub", lambda a, b: a - b)
_register_elementwise("mul", lambda a, b: a * b)
_register_elementwise("divide", lambda a, b: a / b)
_register_elementwise("maximum", np.maximum)
_register_elementwise("minimum", np.minimum)
_register_elementwise("neg", lambda a: -a, unary=True)
_register_elementwise("exp", np.exp, unary=True, cost=4.0)
_register_elementwise("log", np.log, unary=True, cost=4.0)
_register_elementwise("sqrt", np.sqrt, unary=True, cost=2.0)
_register_elementwise("relu", lambda a: np.maximum(a, 0.0), unary=True)
_register_elementwise(
    "sigmoid", lambda a: 1.0 / (1.0 + np.exp(-a)), unary=True, cost=5.0
)
_register_elementwise("tanh", np.tanh, unary=True, cost=5.0)
_register_elementwise(
    "gelu",
    lambda a: 0.5 * a * (1.0 + np.tanh(0.7978845608028654 * (a + 0.044715 * a ** 3))),
    unary=True,
    cost=10.0,
)


def _bias_add(x, b, **attrs):
    return x + b


register(
    OpDef(
        name="bias_add",
        compute=_bias_add,
        batched=_bias_add,
        infer_shape=_same_as_first,
        flops=lambda shapes, attrs: float(_prod(shapes[0])),
        is_elementwise=True,
        arity=2,
    )
)


# ---------------------------------------------------------------------------
# linear algebra
# ---------------------------------------------------------------------------


def _dense(x, w, **attrs):
    """``x @ w`` with ``w`` stored as ``(in_features, out_features)``."""
    return x @ w


def _dense_shape(shapes: List[Shape], attrs: Dict[str, Any]) -> Shape:
    x, w = shapes
    return tuple(x[:-1]) + (w[-1],)


def _dense_flops(shapes: List[Shape], attrs: Dict[str, Any]) -> float:
    x, w = shapes
    return 2.0 * _prod(x[:-1]) * x[-1] * w[-1]


register(
    OpDef(
        name="dense",
        compute=_dense,
        batched=_dense,
        infer_shape=_dense_shape,
        flops=_dense_flops,
        arity=2,
    )
)


def _matmul(a, b, **attrs):
    return a @ b


def _matmul_shape(shapes: List[Shape], attrs: Dict[str, Any]) -> Shape:
    a, b = shapes
    batch = np.broadcast_shapes(a[:-2], b[:-2]) if (len(a) > 2 or len(b) > 2) else ()
    return tuple(int(s) for s in batch) + (a[-2], b[-1])


def _matmul_flops(shapes: List[Shape], attrs: Dict[str, Any]) -> float:
    a, b = shapes
    batch = _prod(np.broadcast_shapes(a[:-2], b[:-2])) if (len(a) > 2 or len(b) > 2) else 1
    return 2.0 * batch * a[-2] * a[-1] * b[-1]


register(
    OpDef(
        name="matmul",
        compute=_matmul,
        batched=_matmul,
        infer_shape=_matmul_shape,
        flops=_matmul_flops,
        arity=2,
    )
)


# ---------------------------------------------------------------------------
# reductions, normalization, attention helpers
# ---------------------------------------------------------------------------


def _axis(attrs: Dict[str, Any], default: int = -1) -> int:
    return int(attrs.get("axis", default))


def _softmax(x, **attrs):
    axis = _axis(attrs)
    m = np.max(x, axis=axis, keepdims=True)
    e = np.exp(x - m)
    return e / np.sum(e, axis=axis, keepdims=True)


def _softmax_batched(x, **attrs):
    # negative axes are batch-safe; positive axes must be shifted by the
    # batched-kernel generator before reaching here.
    return _softmax(x, **attrs)


register(
    OpDef(
        name="softmax",
        compute=_softmax,
        batched=_softmax_batched,
        infer_shape=_same_as_first,
        flops=lambda shapes, attrs: 5.0 * _prod(shapes[0]),
        is_elementwise=False,
        arity=1,
    )
)


def _layer_norm(x, gamma, beta, **attrs):
    eps = float(attrs.get("eps", 1e-5))
    mean = np.mean(x, axis=-1, keepdims=True)
    var = np.var(x, axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * gamma + beta


register(
    OpDef(
        name="layer_norm",
        compute=_layer_norm,
        batched=_layer_norm,
        infer_shape=_same_as_first,
        flops=lambda shapes, attrs: 8.0 * _prod(shapes[0]),
        arity=3,
    )
)


def _reduce_shape(shapes: List[Shape], attrs: Dict[str, Any]) -> Shape:
    axis = _axis(attrs)
    keepdims = bool(attrs.get("keepdims", False))
    shape = list(shapes[0])
    axis = axis % len(shape)
    if keepdims:
        shape[axis] = 1
    else:
        shape.pop(axis)
    return tuple(shape)


register(
    OpDef(
        name="sum",
        compute=lambda x, **attrs: np.sum(x, axis=_axis(attrs), keepdims=bool(attrs.get("keepdims", False))),
        infer_shape=_reduce_shape,
        flops=lambda shapes, attrs: float(_prod(shapes[0])),
        arity=1,
    )
)

register(
    OpDef(
        name="mean",
        compute=lambda x, **attrs: np.mean(x, axis=_axis(attrs), keepdims=bool(attrs.get("keepdims", False))),
        infer_shape=_reduce_shape,
        flops=lambda shapes, attrs: float(_prod(shapes[0])),
        arity=1,
    )
)


def _argmax(x, **attrs):
    axis = _axis(attrs)
    return np.argmax(x, axis=axis).astype(np.int32)


register(
    OpDef(
        name="argmax",
        compute=_argmax,
        batched=_argmax,
        infer_shape=_reduce_shape,
        flops=lambda shapes, attrs: float(_prod(shapes[0])),
        arity=1,
        out_dtype="int32",
    )
)


# ---------------------------------------------------------------------------
# data movement
# ---------------------------------------------------------------------------


def _concat(*xs, **attrs):
    axis = _axis(attrs)
    return np.concatenate(xs, axis=axis)


def _concat_shape(shapes: List[Shape], attrs: Dict[str, Any]) -> Shape:
    axis = _axis(attrs) % len(shapes[0])
    out = list(shapes[0])
    out[axis] = sum(s[axis] for s in shapes)
    return tuple(out)


register(
    OpDef(
        name="concat",
        compute=_concat,
        batched=_concat,
        infer_shape=_concat_shape,
        flops=lambda shapes, attrs: float(sum(_prod(s) for s in shapes)),
        is_injective=True,
        arity=None,
    )
)


def _reshape(x, **attrs):
    return np.reshape(x, tuple(attrs["newshape"]))


register(
    OpDef(
        name="reshape",
        compute=_reshape,
        infer_shape=lambda shapes, attrs: tuple(int(s) for s in attrs["newshape"]),
        flops=lambda shapes, attrs: 0.0,
        is_injective=True,
        arity=1,
    )
)


def _transpose(x, **attrs):
    return np.transpose(x, tuple(attrs["axes"]))


register(
    OpDef(
        name="transpose",
        compute=_transpose,
        infer_shape=lambda shapes, attrs: tuple(shapes[0][a] for a in attrs["axes"]),
        flops=lambda shapes, attrs: float(_prod(shapes[0])),
        is_injective=True,
        arity=1,
    )
)


def _take_row(x, **attrs):
    return x[int(attrs["index"])]


register(
    OpDef(
        name="take_row",
        compute=_take_row,
        infer_shape=lambda shapes, attrs: tuple(shapes[0][1:]),
        flops=lambda shapes, attrs: float(_prod(shapes[0][1:])),
        is_injective=True,
        arity=1,
    )
)


def _full(**attrs):
    return np.full(tuple(attrs["shape"]), float(attrs.get("value", 0.0)), dtype=np.float32)


register(
    OpDef(
        name="full",
        compute=lambda **attrs: _full(**attrs),
        infer_shape=lambda shapes, attrs: tuple(int(s) for s in attrs["shape"]),
        flops=lambda shapes, attrs: float(_prod(attrs["shape"])),
        arity=0,
    )
)

register(
    OpDef(
        name="zeros",
        compute=lambda **attrs: np.zeros(tuple(attrs["shape"]), dtype=np.float32),
        infer_shape=lambda shapes, attrs: tuple(int(s) for s in attrs["shape"]),
        flops=lambda shapes, attrs: float(_prod(attrs["shape"])),
        arity=0,
    )
)


# ---------------------------------------------------------------------------
# host / synchronization operators
# ---------------------------------------------------------------------------

register(
    OpDef(
        name="item",
        compute=lambda x, **attrs: float(np.asarray(x).reshape(-1)[int(attrs.get("index", 0))]),
        infer_shape=lambda shapes, attrs: (),
        kind="sync",
        arity=1,
    )
)

register(
    OpDef(
        name="item_int",
        compute=lambda x, **attrs: int(np.asarray(x).reshape(-1)[int(attrs.get("index", 0))]),
        infer_shape=lambda shapes, attrs: (),
        kind="sync",
        arity=1,
    )
)


def _register_host(name: str, fn: Callable) -> None:
    register(
        OpDef(
            name=name,
            compute=fn,
            infer_shape=lambda shapes, attrs: (),
            kind="host",
        )
    )


_register_host("scalar_add", lambda a, b: a + b)
_register_host("scalar_sub", lambda a, b: a - b)
_register_host("scalar_mul", lambda a, b: a * b)
_register_host("scalar_gt", lambda a, b: bool(a > b))
_register_host("scalar_ge", lambda a, b: bool(a >= b))
_register_host("scalar_lt", lambda a, b: bool(a < b))
_register_host("scalar_le", lambda a, b: bool(a <= b))
_register_host("scalar_eq", lambda a, b: bool(a == b))
_register_host("scalar_and", lambda a, b: bool(a) and bool(b))
_register_host("scalar_or", lambda a, b: bool(a) or bool(b))
_register_host("scalar_not", lambda a: not bool(a))


# "scale": elementwise multiplication that broadcasts a per-instance gate
# (e.g. a (1, 1) scalar tensor) over a hidden-state tensor.  Semantically
# identical to "mul"; registered under its own name because DyNet executes
# broadcasting element-wise multiplications unbatched (§7.3), which the DyNet
# baseline models by treating "scale" as an unbatchable operator.
_register_elementwise("scale", lambda a, b: a * b)
