"""Flattened per-block dispatch programs for the specialization tier.

:class:`~repro.kernels.batched.BlockKernel.execute_batched` is an
*interpreter*: every launch it re-derives, per operator, the op definition,
the batched-axis attribute adjustments, the external-read sets and the
FLOP/byte estimates feeding the launch records.  All of that is a pure
function of the block structure and the batch size — for a recurring
``(block, batch_size)`` combination it is the same work every single round.

:class:`CompiledBlockProgram` is the JIT-ed form the specialization tier
(:mod:`repro.specialize`) executes instead: one flattened step list with

* the NumPy callable per op resolved once (``opdef.batched`` vs
  ``opdef.compute``, the batched ``take_row`` row-indexing fast path);
* axis/shape attributes pre-adjusted for the leading batch dimension;
* concat broadcast masks precomputed;
* no cost accounting at all — the specialization entry replays *frozen*
  launch records captured from the oracle execution that promoted it.

The numerical semantics are the generic kernel's own: every step calls the
same registry function with the same arguments in the same order, so a
specialized launch is reference-identical to the NumPy oracle by
construction (and :mod:`repro.specialize` can cross-check it on demand).

Programs are memoized per :class:`BlockKernel` and batch size
(:meth:`BlockKernel.specialized_program`), so many specialization entries
(different operand layouts, different devices) share one compiled program;
per-entry state (gather stack buffers, frozen launch records) stays on the
entry.

Buffer reuse safety: a specialized gather may stack scattered operands into
a *preallocated* buffer (``np.stack(..., out=buf)``) instead of allocating a
fresh one per launch — but only for inputs whose value can never escape the
block as a view (``reshape``/``transpose``/``take_row`` produce views; an
output that aliased the reused buffer would be corrupted by the next
launch).  :attr:`CompiledBlockProgram.reusable_inputs` is the statically
computed safe set.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .batched import BatchedOutput, _adjust_attrs
from .registry import get_op

#: operators whose result may be a NumPy *view* of an argument; used by the
#: escape analysis deciding which gather buffers are safe to preallocate
_VIEW_OPS = frozenset({"reshape", "transpose", "take_row"})


class CompiledBlockProgram:
    """Flattened batched execution of one static block at one batch size.

    ``steps`` holds one ``(out_slot, fn, srcs, attrs, broadcast_mask)``
    tuple per block op, in the generic kernel's execution order (fusion
    groups walked in order).  ``srcs`` entries are ``(is_const, value)``:
    a constant array, or a slot index into the value table (inputs occupy
    slots ``0..n_inputs-1``, op ``j`` occupies ``n_inputs + j``).
    """

    __slots__ = (
        "kernel",
        "batch_size",
        "n_inputs",
        "n_slots",
        "steps",
        "output_specs",
        "reusable_inputs",
    )

    def __init__(self, kernel: Any, batch_size: int) -> None:
        block = kernel.block
        self.kernel = kernel
        self.batch_size = batch_size
        n_inputs = len(block.inputs)
        self.n_inputs = n_inputs
        self.n_slots = n_inputs + len(block.ops)

        batched: Dict[int, bool] = {
            inp.index: not inp.shared for inp in block.inputs
        }
        out_batched: Dict[int, bool] = {}
        steps: List[Tuple] = []
        for group in kernel.groups:
            for j in group.op_indices:
                bop = block.ops[j]
                opdef = get_op(bop.op_name)
                srcs: List[Tuple[bool, Any]] = []
                src_batched: List[bool] = []
                for kind, ref in bop.args:
                    if kind == "const":
                        srcs.append((True, np.asarray(ref)))
                        src_batched.append(False)
                    elif kind == "input":
                        srcs.append((False, ref))
                        src_batched.append(batched[ref])
                    else:
                        srcs.append((False, n_inputs + ref))
                        src_batched.append(out_batched[ref])
                any_b = any(src_batched)
                attrs = _adjust_attrs(bop.op_name, bop.attrs, any_b)
                bmask: Optional[Tuple[bool, ...]] = None
                if any_b and bop.op_name == "concat":
                    # concat needs every operand to carry the batch axis;
                    # precompute which positions broadcast (shared / const)
                    bmask = tuple(not b for b in src_batched)
                if bop.op_name == "reshape" and any_b:
                    attrs = dict(attrs)
                    attrs["newshape"] = [batch_size] + list(attrs["newshape"])
                if bop.op_name == "take_row" and any_b:
                    index = int(bop.attrs["index"])
                    fn = _batched_take_row(index)
                    attrs = {}
                else:
                    fn = (
                        opdef.batched
                        if (any_b and opdef.batched is not None)
                        else opdef.compute
                    )
                steps.append((n_inputs + j, fn, tuple(srcs), attrs, bmask))
                out_batched[j] = any_b
        self.steps = tuple(steps)

        outs: List[Tuple[int, bool]] = []
        for kind, ref in block.outputs:
            if kind == "input":
                outs.append((ref, batched[ref]))
            else:
                outs.append((n_inputs + ref, out_batched[ref]))
        self.output_specs = tuple(outs)
        self.reusable_inputs = self._reusable_inputs(kernel)

    @staticmethod
    def _reusable_inputs(kernel: Any) -> frozenset:
        """Varying inputs whose gather buffer is safe to reuse across
        launches: no block output can be a NumPy view of them.

        Conservative forward dataflow over the view-producing ops: a value
        "may view" the set of inputs reachable through unbroken chains of
        ``reshape``/``transpose``/``take_row``; every other op allocates.
        """
        block = kernel.block
        may_view: Dict[Tuple[str, int], frozenset] = {
            ("input", inp.index): frozenset((inp.index,)) for inp in block.inputs
        }
        for group in kernel.groups:
            for j in group.op_indices:
                bop = block.ops[j]
                if bop.op_name in _VIEW_OPS:
                    views: frozenset = frozenset()
                    for kind, ref in bop.args:
                        if kind != "const":
                            views |= may_view.get((kind, ref), frozenset())
                    may_view[("op", j)] = views
                else:
                    may_view[("op", j)] = frozenset()
        escaped: frozenset = frozenset()
        for kind, ref in block.outputs:
            escaped |= may_view.get((kind, ref), frozenset())
        return frozenset(
            inp.index
            for inp in block.inputs
            if not inp.shared and inp.index not in escaped
        )

    def execute(
        self,
        operands: List[Any],
        stack_buffers: Optional[Dict[int, np.ndarray]] = None,
    ) -> List[BatchedOutput]:
        """Run the flattened program over resolved batched operands.

        ``operands`` follows the :class:`~repro.kernels.batched.BatchedOperand`
        contract (``array`` ready, or ``parts`` to stack — the fused gather);
        ``stack_buffers`` optionally maps input index -> preallocated
        ``[B, ...]`` buffer for the stack (only ever passed for inputs in
        :attr:`reusable_inputs`).  No cost accounting happens here: the
        owning specialization entry replays frozen launch records instead.
        """
        batch_size = self.batch_size
        vals: List[Any] = [None] * self.n_slots
        for i in range(self.n_inputs):
            op = operands[i]
            arr = op.array
            if arr is None:
                parts = op.parts
                arrs = [p if type(p) is np.ndarray else p.array for p in parts]
                buf = None if stack_buffers is None else stack_buffers.get(i)
                if buf is not None:
                    arr = np.stack(arrs, axis=0, out=buf)
                else:
                    arr = np.stack(arrs, axis=0)
            vals[i] = arr
        for out_slot, fn, srcs, attrs, bmask in self.steps:
            args = [value if is_const else vals[value] for is_const, value in srcs]
            if bmask is not None:
                args = [
                    np.broadcast_to(a, (batch_size,) + a.shape) if bcast else a
                    for a, bcast in zip(args, bmask)
                ]
            vals[out_slot] = np.asarray(fn(*args, **attrs))
        return [
            BatchedOutput(vals[slot], batched, batch_size)
            for slot, batched in self.output_specs
        ]


def _batched_take_row(index: int):
    """The batched ``take_row`` fast path (row ``index`` of every instance)."""

    def take(x: np.ndarray) -> np.ndarray:
        return x[:, index]

    return take
