"""Auto-scheduler with profile-guided operator priorities (§C.1, Table 9).

The paper relies on TVM's Ansor auto-scheduler to tune each generated
batched kernel and, crucially, allocates the tuning budget across kernels in
proportion to how often each kernel executes — estimated either statically
(a nesting-depth heuristic) or via profile-guided optimization (PGO).

We cannot run Ansor, so the search itself is simulated faithfully in shape:
each kernel has a hidden tuning landscape (a deterministic function of its
name) over tile-size configurations; random search with ``n`` trials keeps
the best configuration found, whose quality feeds the device simulator's
per-kernel ``schedule_table``.  More trials → better expected quality with
diminishing returns, so how the *total* budget is split across kernels —
uniformly (static estimate) or by measured invocation frequency (PGO) —
changes end-to-end latency exactly the way Table 9 reports.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence

import numpy as np

#: quality of a completely untuned schedule
BASE_QUALITY = 0.45
#: best achievable schedule quality
PEAK_QUALITY = 0.98


def _kernel_landscape_seed(kernel_name: str) -> int:
    digest = hashlib.sha256(kernel_name.encode()).digest()
    return int.from_bytes(digest[:4], "little")


def tune_kernel(kernel_name: str, trials: int, seed: int = 0) -> float:
    """Random-search the kernel's (synthetic) schedule space with ``trials``
    candidates and return the best quality found, in (0, 1]."""
    if trials <= 0:
        return BASE_QUALITY
    rng = np.random.default_rng(_kernel_landscape_seed(kernel_name) ^ seed)
    # each candidate's quality: mostly mediocre, occasionally near-optimal —
    # the classic long-tailed tuning landscape
    candidates = BASE_QUALITY + (PEAK_QUALITY - BASE_QUALITY) * rng.beta(1.6, 3.0, size=trials)
    return float(np.max(candidates))


def static_frequency_estimate(kernel_names: Sequence[str]) -> Dict[str, float]:
    """Static invocation-frequency heuristic.

    Without profiling, ACROBAT estimates execution frequency from how deeply
    nested an operator call site is; across one module all generated batched
    kernels sit inside the same level of (data-dependent) recursion, so the
    static estimate degenerates to a uniform weighting — which is exactly why
    PGO helps (Table 9).
    """
    return {name: 1.0 for name in kernel_names}


def profile_frequencies(compiled_model, instances: Sequence[Any]) -> Dict[str, float]:
    """Profile-guided frequency estimate: run one mini-batch and count how
    many times each generated kernel is launched."""
    device_counts: Dict[str, float] = {}
    rt = compiled_model.make_runtime()
    # reuse the normal run path but on a private device simulator
    outputs, _ = compiled_model.run(instances, device=rt.device)
    for name, count in rt.device.counters.launches_by_kernel.items():
        device_counts[name] = float(count)
    return device_counts


def allocate_trials(
    kernel_names: Sequence[str],
    total_trials: int,
    weights: Mapping[str, float],
) -> Dict[str, int]:
    """Split ``total_trials`` across kernels proportionally to ``weights``
    (missing weights count as the smallest observed weight)."""
    names = list(kernel_names)
    if not names:
        return {}
    floor = min([w for w in weights.values() if w > 0] or [1.0])
    raw = np.array([float(weights.get(n, floor)) for n in names], dtype=np.float64)
    raw = raw / raw.sum()
    alloc = np.floor(raw * total_trials).astype(int)
    remainder = total_trials - int(alloc.sum())
    order = np.argsort(-raw)
    for i in range(remainder):
        alloc[order[i % len(names)]] += 1
    return {n: int(a) for n, a in zip(names, alloc)}


@dataclass
class AutoScheduleResult:
    """Outcome of one auto-scheduling session."""

    schedule_table: Dict[str, float]
    trials: Dict[str, int]
    total_trials: int
    used_pgo: bool


def auto_schedule(
    compiled_model,
    total_trials: int,
    use_pgo: bool = True,
    sample_instances: Optional[Sequence[Any]] = None,
    seed: int = 0,
) -> AutoScheduleResult:
    """Tune every generated kernel of ``compiled_model`` under a total trial
    budget and install the resulting schedule table on the model.

    With ``use_pgo`` the budget is split by measured kernel invocation counts
    (requires ``sample_instances``); otherwise the static uniform estimate is
    used.
    """
    kernel_names = sorted(set(compiled_model.kernel_names()))
    if use_pgo:
        if sample_instances is None:
            raise ValueError("PGO auto-scheduling needs sample_instances to profile")
        weights = profile_frequencies(compiled_model, sample_instances)
    else:
        weights = static_frequency_estimate(kernel_names)
    trials = allocate_trials(kernel_names, total_trials, weights)
    table = {name: tune_kernel(name, trials.get(name, 0), seed) for name in kernel_names}
    compiled_model.schedule_table.update(table)
    return AutoScheduleResult(
        schedule_table=table,
        trials=trials,
        total_trials=total_trials,
        used_pgo=use_pgo,
    )
