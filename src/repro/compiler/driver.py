"""Compilation pipeline and the :class:`CompiledModel` user API.

:func:`compile_module` runs the full ACROBAT pipeline:

1. function specialization (code duplication for parameter reuse, §B.1);
2. taint analysis for parameter-reuse inference (§5.1);
3. program-phase inference (§4.1);
4. tensor-dependent-control-flow detection (§4.2);
5. AOT Python code generation with inline depth computation, ghost ops and
   fiber spawning (§4, §6);
6. batched-kernel construction (fusion + gather handling) for every static
   block (§5).

The resulting :class:`CompiledModel` executes mini-batches and reports a
host/device time breakdown per run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..analysis.duplication import specialize_functions
from ..analysis.phases import infer_phases
from ..analysis.structure import reachable_functions, uses_tensor_dependent_control_flow
from ..analysis.taint import analyze_taint
from ..ir.expr import Function
from ..ir.module import IRModule
from ..kernels.batched import BlockKernel
from ..runtime.device import DeviceSimulator, GPUSpec
from ..runtime.executor import AcrobatRuntime, ExecutionOptions, RunStats
from ..runtime.fibers import FiberScheduler
from ..runtime.profiler import ActivityProfiler
from ..runtime.tensor import materialize_value
from .codegen import GeneratedProgram, PythonCodegen, py_func_name
from .options import CompilerOptions


@dataclass
class CompiledModel:
    """An AOT-compiled model ready to run mini-batches."""

    module: IRModule
    options: CompilerOptions
    params: Dict[str, np.ndarray]
    program: GeneratedProgram
    kernels: Dict[int, BlockKernel]
    instance_param_names: List[str]
    gpu_spec: Optional[GPUSpec] = None
    #: per-kernel schedule qualities from the auto-scheduler (kernel name -> quality)
    schedule_table: Dict[str, float] = field(default_factory=dict)
    #: statistics of the most recent run
    last_stats: Optional[RunStats] = None

    # -- introspection -----------------------------------------------------------
    @property
    def source(self) -> str:
        """Generated Python source of the AOT-compiled unbatched program."""
        return self.program.source

    @property
    def uses_tdc(self) -> bool:
        return self.program.tdc

    def kernel_names(self) -> List[str]:
        """Names of all generated (fused) batched kernels."""
        names: List[str] = []
        for kernel in self.kernels.values():
            names.extend(kernel.kernel_names())
        return names

    # -- execution ------------------------------------------------------------------
    def _instance_args(self, instance: Any) -> List[Any]:
        """Assemble the argument list of ``main`` for one instance."""
        main = self.module.main
        args: List[Any] = []
        for p in main.params:
            if p.name_hint in self.params:
                args.append(self.params[p.name_hint])
            else:
                if isinstance(instance, Mapping):
                    args.append(instance[p.name_hint])
                elif len(self.instance_param_names) == 1:
                    args.append(instance)
                else:
                    raise TypeError(
                        f"instance input must be a mapping with keys "
                        f"{self.instance_param_names}"
                    )
        return args

    def make_runtime(self, device: Optional[DeviceSimulator] = None) -> AcrobatRuntime:
        """Create a fresh runtime bound to this model's kernels and options."""
        opts = self.options
        exec_options = ExecutionOptions(
            gather_fusion=opts.gather_fusion,
            inline_depth=opts.inline_depth,
            batch_memcpy=opts.batch_memcpy,
            validate=opts.validate,
        )
        device = device or DeviceSimulator(
            spec=self.gpu_spec,
            schedule_table=self.schedule_table,
            default_schedule_quality=opts.default_schedule_quality,
        )
        return AcrobatRuntime(self.kernels, exec_options, device, ActivityProfiler())

    def run(
        self,
        instances: Sequence[Any],
        device: Optional[DeviceSimulator] = None,
    ) -> Tuple[List[Any], RunStats]:
        """Run one mini-batch.

        Parameters
        ----------
        instances:
            One entry per batch instance: a mapping from per-instance input
            name to value, or the bare value when ``main`` has a single
            per-instance input.
        device:
            Optional externally constructed device simulator (lets callers
            share schedule tables across runs).

        Returns
        -------
        (outputs, stats):
            Per-instance outputs (fully materialized NumPy / ADT values) and
            the host/device breakdown of the run.
        """
        rt = self.make_runtime(device)
        namespace = self.program.namespace
        namespace["__rt"] = rt
        entry = namespace[py_func_name("main")]

        run_start = time.perf_counter()
        sync_rounds = 0
        raw_results: List[Any] = []

        if not self.program.tdc:
            for i, instance in enumerate(instances):
                rt.current_instance = i
                args = self._instance_args(instance)
                raw_results.append(entry(*args, [0], 0))
            rt.trigger()
        else:
            fibers = FiberScheduler(rt.trigger)
            namespace["__fibers"] = fibers
            roots = []
            for i, instance in enumerate(instances):
                rt.current_instance = i
                args = self._instance_args(instance)
                roots.append(entry(*args, [0], 0))
            raw_results = fibers.run(roots)
            rt.trigger()
            sync_rounds = fibers.num_sync_rounds

        rt.trigger()
        outputs = [materialize_value(r) for r in raw_results]
        total_s = time.perf_counter() - run_start

        stats = rt.collect_stats(len(instances), sync_rounds)
        accounted = (
            stats.host_ms.get("scheduling", 0.0)
            + stats.host_ms.get("dispatch", 0.0)
            + rt.profiler.ms("numpy_compute")
        )
        stats.host_ms["dfg_construction"] = max(0.0, total_s * 1e3 - accounted)
        self.last_stats = stats
        return outputs, stats


def compile_module(
    module: IRModule,
    params: Mapping[str, np.ndarray],
    options: Optional[CompilerOptions] = None,
    gpu_spec: Optional[GPUSpec] = None,
) -> CompiledModel:
    """Compile an IR module with bound parameters into a :class:`CompiledModel`.

    ``params`` maps the names of ``main``'s *weight* parameters to concrete
    arrays; every remaining ``main`` parameter is treated as a per-instance
    input (and is therefore tainted / per-instance for the reuse analysis).
    """
    options = (options or CompilerOptions()).effective()

    specialized = specialize_functions(module, options.specialization)
    main = specialized.main
    instance_params = [p.name_hint for p in main.params if p.name_hint not in params]
    if not instance_params:
        raise ValueError("main has no per-instance inputs (all parameters bound)")

    taint = analyze_taint(specialized, instance_params)
    phases = infer_phases(specialized, options.program_phases)
    tdc = uses_tensor_dependent_control_flow(specialized)
    order = reachable_functions(specialized, "main")

    codegen = PythonCodegen(specialized, taint, phases, options, tdc, order)
    program = codegen.generate()

    kernels = {
        block.block_id: BlockKernel(
            block,
            enable_fusion=options.kernel_fusion,
            enable_horizontal_fusion=options.horizontal_fusion,
        )
        for block in program.blocks
    }

    return CompiledModel(
        module=specialized,
        options=options,
        params={k: np.asarray(v) for k, v in params.items()},
        program=program,
        kernels=kernels,
        instance_param_names=instance_params,
        gpu_spec=gpu_spec,
    )
