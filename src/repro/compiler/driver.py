"""Compilation pipeline and the :class:`CompiledModel` user API.

:func:`compile_module` runs the full ACROBAT pipeline:

1. function specialization (code duplication for parameter reuse, §B.1);
2. taint analysis for parameter-reuse inference (§5.1);
3. program-phase inference (§4.1);
4. tensor-dependent-control-flow detection (§4.2);
5. AOT Python code generation with inline depth computation, ghost ops and
   fiber spawning (§4, §6);
6. batched-kernel construction (fusion + gather handling) for every static
   block (§5).

The resulting :class:`CompiledModel` is a thin adapter over the
:class:`~repro.engine.engine.ExecutionEngine`: it supplies the generated
program binding and per-instance argument assembly, and the engine owns
runtime construction, fibers, and statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..analysis.duplication import specialize_functions
from ..analysis.phases import infer_phases
from ..analysis.structure import reachable_functions, uses_tensor_dependent_control_flow
from ..analysis.taint import analyze_taint
from ..engine.engine import ExecutionEngine, InstanceArgBinder, ProgramBinding
from ..ir.module import IRModule
from ..kernels.batched import BlockKernel
from ..runtime.device import DeviceSimulator, GPUSpec
from ..runtime.executor import AcrobatRuntime, ExecutionOptions, RunStats
from ..runtime.fibers import FiberScheduler
from .codegen import GeneratedProgram, PythonCodegen, py_func_name
from .options import CompilerOptions


class CompiledProgramBinding(ProgramBinding):
    """Engine adapter for an AOT-generated program."""

    def __init__(self, model: "CompiledModel") -> None:
        self.model = model

    @property
    def uses_fibers(self) -> bool:
        return self.model.program.tdc

    def bind(
        self, runtime: AcrobatRuntime, fibers: Optional[FiberScheduler]
    ) -> Callable[[Any], Any]:
        namespace = self.model.program.namespace
        entry = namespace[py_func_name("main")]
        binder = self.model.instance_binder

        def run_instance(instance: Any) -> Any:
            # the generated code reads __rt/__fibers from the program's
            # (shared, module-level) namespace; rebinding on every call keeps
            # a persistent session's cached entry correct even when other
            # engines of the same model execute between submits
            namespace["__rt"] = runtime
            namespace["__fibers"] = fibers
            return entry(*binder(instance), [0], 0)

        return run_instance


@dataclass
class CompiledModel:
    """An AOT-compiled model ready to run mini-batches."""

    module: IRModule
    options: CompilerOptions
    params: Dict[str, np.ndarray]
    program: GeneratedProgram
    kernels: Dict[int, BlockKernel]
    instance_param_names: List[str]
    gpu_spec: Optional[GPUSpec] = None
    #: per-kernel schedule qualities from the auto-scheduler (kernel name -> quality)
    schedule_table: Dict[str, float] = field(default_factory=dict)
    #: statistics of the most recent run
    last_stats: Optional[RunStats] = None

    # -- introspection -----------------------------------------------------------
    @property
    def source(self) -> str:
        """Generated Python source of the AOT-compiled unbatched program."""
        return self.program.source

    @property
    def uses_tdc(self) -> bool:
        return self.program.tdc

    def kernel_names(self) -> List[str]:
        """Names of all generated (fused) batched kernels."""
        names: List[str] = []
        for kernel in self.kernels.values():
            names.extend(kernel.kernel_names())
        return names

    # -- execution ------------------------------------------------------------------
    @property
    def instance_binder(self) -> InstanceArgBinder:
        """Argument assembly for one instance (engine-layer binder)."""
        return InstanceArgBinder(
            [p.name_hint for p in self.module.main.params], self.params
        )

    def _instance_args(self, instance: Any) -> List[Any]:
        """Assemble the argument list of ``main`` for one instance."""
        return self.instance_binder(instance)

    def _exec_options(self, policy: Optional[str] = None) -> ExecutionOptions:
        """Runtime-facing options derived from the compiler options."""
        opts = self.options
        return ExecutionOptions(
            gather_fusion=opts.gather_fusion,
            scheduler=policy
            or opts.scheduler
            or ("inline_depth" if opts.inline_depth else "dynamic_depth"),
            batch_memcpy=opts.batch_memcpy,
            plan_cache=opts.plan_cache,
            specialize=opts.kernel_specialization,
            validate=opts.validate,
        )

    def _policy_args(self) -> Dict[str, Any]:
        """Extra arguments passed to the scheduler-policy factory."""
        return {}

    def make_engine(
        self,
        device: Optional[DeviceSimulator] = None,
        scheduler: Optional[str] = None,
        *,
        devices: Any = None,
        placement: Any = None,
        placement_args: Optional[Dict[str, Any]] = None,
        interconnect: Any = None,
    ) -> ExecutionEngine:
        """Create an execution engine bound to this model.

        ``scheduler`` overrides the scheduler-policy name (a key of the
        engine's scheduler registry — named ``scheduler`` on every model
        entry point so it cannot be confused with the serving layer's flush
        policies); the default derives from the compiler options.

        ``devices`` turns on multi-device execution: an integer count, a
        list of :class:`~repro.runtime.device.GPUSpec`/preset names
        (heterogeneous groups), or a ready
        :class:`~repro.devices.group.DeviceGroup`.  ``placement`` selects
        the placement policy by registry name or instance (default
        ``round_robin`` for multi-device groups); ``interconnect`` prices
        cross-device transfers (preset name or
        :class:`~repro.devices.interconnect.Interconnect`).
        """
        return ExecutionEngine(
            program=CompiledProgramBinding(self),
            kernels=self.kernels,
            options=self._exec_options(scheduler),
            policy_args=self._policy_args(),
            device=device,
            gpu_spec=self.gpu_spec,
            schedule_table=self.schedule_table,
            default_schedule_quality=self.options.default_schedule_quality,
            devices=devices,
            placement=placement,
            placement_args=placement_args,
            interconnect=interconnect,
        )

    def make_runtime(self, device: Optional[DeviceSimulator] = None) -> AcrobatRuntime:
        """Create a fresh runtime bound to this model's kernels and options
        (compatibility shim over :meth:`make_engine`)."""
        return self.make_engine(device).runtime

    def session(
        self,
        max_batch: Optional[int] = None,
        device: Optional[DeviceSimulator] = None,
        scheduler: Optional[str] = None,
        *,
        flush_policy: Any = None,
        flush_args: Optional[Dict[str, Any]] = None,
        clock: Any = None,
        devices: Any = None,
        placement: Any = None,
        placement_args: Optional[Dict[str, Any]] = None,
        interconnect: Any = None,
    ):
        """Open a persistent :class:`~repro.serve.session.InferenceSession`
        that batches across independently submitted requests.

        ``scheduler`` selects the *scheduler* policy (registry name — named
        ``scheduler`` here and in :meth:`serve` so it can never be confused
        with the flush-policy registry); ``flush_policy``/``flush_args``
        select the session's *flush* policy (see :mod:`repro.serve.policy`);
        ``max_batch=n`` is deprecated sugar for ``flush_policy="size",
        flush_args={"n": n}``.  ``devices``/``placement``/``placement_args``/
        ``interconnect`` shard the session over a device group (see
        :meth:`make_engine`).
        """
        return self.make_engine(
            device,
            scheduler,
            devices=devices,
            placement=placement,
            placement_args=placement_args,
            interconnect=interconnect,
        ).session(
            max_batch=max_batch, policy=flush_policy, policy_args=flush_args, clock=clock
        )

    def serve(
        self,
        policy: Any = "adaptive",
        *,
        clock: Any = None,
        device: Optional[DeviceSimulator] = None,
        scheduler: Optional[str] = None,
        devices: Any = None,
        placement: Any = None,
        placement_args: Optional[Dict[str, Any]] = None,
        interconnect: Any = None,
        **policy_args: Any,
    ):
        """Open a policy-driven serving session over this model.

        The serving facade: ``compile_model(...).serve("deadline", ms=5)``
        returns an :class:`~repro.serve.session.InferenceSession` whose
        flush policy (by registry name or instance, with ``policy_args``)
        decides when the accumulated requests execute as one batched round.
        ``scheduler`` optionally overrides the scheduler-policy name and
        ``clock`` the session's time source; ``devices``/``placement``/
        ``placement_args``/``interconnect`` shard the session over a device
        group (see :meth:`make_engine`) — ``serve("adaptive", devices=4,
        placement="round_robin")`` serves one model across four simulated
        GPUs.
        """
        return self.make_engine(
            device,
            scheduler,
            devices=devices,
            placement=placement,
            placement_args=placement_args,
            interconnect=interconnect,
        ).session(policy=policy, policy_args=policy_args or None, clock=clock)

    def run(
        self,
        instances: Sequence[Any],
        device: Optional[DeviceSimulator] = None,
    ) -> Tuple[List[Any], RunStats]:
        """Run one mini-batch.

        Parameters
        ----------
        instances:
            One entry per batch instance: a mapping from per-instance input
            name to value, or the bare value when ``main`` has a single
            per-instance input.
        device:
            Optional externally constructed device simulator (lets callers
            share schedule tables across runs).

        Returns
        -------
        (outputs, stats):
            Per-instance outputs (fully materialized NumPy / ADT values) and
            the host/device breakdown of the run.
        """
        outputs, stats = self.make_engine(device).run(instances)
        self.last_stats = stats
        return outputs, stats


def compile_module(
    module: IRModule,
    params: Mapping[str, np.ndarray],
    options: Optional[CompilerOptions] = None,
    gpu_spec: Optional[GPUSpec] = None,
) -> CompiledModel:
    """Compile an IR module with bound parameters into a :class:`CompiledModel`.

    ``params`` maps the names of ``main``'s *weight* parameters to concrete
    arrays; every remaining ``main`` parameter is treated as a per-instance
    input (and is therefore tainted / per-instance for the reuse analysis).
    """
    options = (options or CompilerOptions()).effective()

    specialized = specialize_functions(module, options.specialization)
    main = specialized.main
    instance_params = [p.name_hint for p in main.params if p.name_hint not in params]
    if not instance_params:
        raise ValueError("main has no per-instance inputs (all parameters bound)")

    taint = analyze_taint(specialized, instance_params)
    phases = infer_phases(specialized, options.program_phases)
    tdc = uses_tensor_dependent_control_flow(specialized)
    order = reachable_functions(specialized, "main")

    codegen = PythonCodegen(specialized, taint, phases, options, tdc, order)
    program = codegen.generate()

    kernels = {
        block.block_id: BlockKernel(
            block,
            enable_fusion=options.kernel_fusion,
            enable_horizontal_fusion=options.horizontal_fusion,
        )
        for block in program.blocks
    }

    return CompiledModel(
        module=specialized,
        options=options,
        params={k: np.asarray(v) for k, v in params.items()},
        program=program,
        kernels=kernels,
        instance_param_names=instance_params,
        gpu_spec=gpu_spec,
    )
