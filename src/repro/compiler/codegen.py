"""Ahead-of-time code generation (§6, §C.2).

The paper compiles the input Relay program to C++; here we compile it to
Python source that is ``exec``-ed once at compile time.  The generated code
is the *unbatched* program: it runs once per mini-batch instance, calling
``__rt.invoke(block_id, depth, phase, args)`` for every static block and
thereby lazily building the DFG.  The generator also inserts:

* **inline depth computation** — a per-instance ``__depth`` counter threaded
  through calls; hoisted blocks use the static depth 0 (§4.1, §A.1);
* **program-phase updates** in ``main`` (§A.3);
* **ghost-operator alignment** of the depth counter across conditional
  branches (§4.1, Fig. 3);
* **concurrent-call handling** — sibling calls annotated as concurrent share
  their starting depth; under tensor-dependent control flow they are spawned
  as fibers and joined (§4.2);
* **synchronization points** (``yield``) before every host read of a tensor
  value, which is what makes batching possible in the presence of
  tensor-dependent control flow.

For programs without tensor-dependent control flow plain functions are
generated; otherwise every generated function is a generator coroutine
driven by :class:`repro.runtime.fibers.FiberScheduler`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..analysis.phases import PhaseAssignment
from ..analysis.structure import hoistable_bindings
from ..analysis.taint import TaintResult
from ..ir.adt import ADTValue, PatternConstructor, PatternVar, PatternWildcard
from ..ir.expr import (
    Call,
    Constant,
    ConstructorRef,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    OpRef,
    TupleExpr,
    TupleGetItem,
    Var,
)
from ..ir.module import IRModule, PRELUDE_FUNCTIONS
from ..ir.visitor import free_vars
from ..kernels.block import StaticBlock
from ..kernels.registry import get_op, has_op
from .blocks import BlockBuilder
from .intrinsics import make_intrinsics
from .options import CompilerOptions

#: host scalar operators inlined as Python expressions
_SCALAR_FMT = {
    "scalar_add": "({0} + {1})",
    "scalar_sub": "({0} - {1})",
    "scalar_mul": "({0} * {1})",
    "scalar_gt": "({0} > {1})",
    "scalar_ge": "({0} >= {1})",
    "scalar_lt": "({0} < {1})",
    "scalar_le": "({0} <= {1})",
    "scalar_eq": "({0} == {1})",
    "scalar_and": "({0} and {1})",
    "scalar_or": "({0} or {1})",
    "scalar_not": "(not {0})",
}


def py_func_name(name: str) -> str:
    """Sanitize an IR global-function name into a Python identifier."""
    return "__fn_" + name.replace("$", "_S_").replace("-", "_")


@dataclass
class GeneratedProgram:
    """Result of AOT code generation."""

    source: str
    namespace: Dict[str, Any]
    blocks: List[StaticBlock]
    tdc: bool
    entry: str = "main"
    num_functions: int = 0

    @property
    def entry_callable(self):
        return self.namespace[py_func_name(self.entry)]


class PythonCodegen:
    """Generates Python source for every reachable function of a module."""

    def __init__(
        self,
        module: IRModule,
        taint: TaintResult,
        phases: PhaseAssignment,
        options: CompilerOptions,
        tdc: bool,
        function_order: Sequence[str],
    ) -> None:
        self.module = module
        self.taint = taint
        self.phases = phases
        self.options = options
        self.tdc = tdc
        self.function_order = [
            n for n in function_order if n not in PRELUDE_FUNCTIONS and n in module.functions
        ]
        self.block_builder = BlockBuilder(taint)
        self.constants: Dict[str, np.ndarray] = {}
        self._const_counter = itertools.count()
        self._hoistable: Dict[str, Set[int]] = {}

    # -- public ---------------------------------------------------------------
    def generate(self) -> GeneratedProgram:
        sources: List[str] = []
        for name in self.function_order:
            func = self.module.functions[name]
            if self.options.hoisting:
                self._hoistable[name] = hoistable_bindings(name, func, self.module)
            else:
                self._hoistable[name] = set()
            emitter = _FunctionEmitter(self, name, func)
            sources.append(emitter.generate())
        source = "\n\n\n".join(sources)

        nil = self.module.get_constructor("Nil")
        cons = self.module.get_constructor("Cons")
        namespace: Dict[str, Any] = {
            "ADTValue": ADTValue,
            "__rt": None,
            "__fibers": None,
        }
        for adt in self.module.adts.values():
            for ctor in adt.constructors:
                namespace[f"__ctor_{ctor.name}"] = ctor
        namespace.update(make_intrinsics(nil, cons, self.tdc))
        namespace.update(self.constants)
        exec(compile(source, "<acrobat-aot>", "exec"), namespace)
        return GeneratedProgram(
            source=source,
            namespace=namespace,
            blocks=self.block_builder.blocks,
            tdc=self.tdc,
            num_functions=len(self.function_order),
        )

    # -- helpers used by the emitters -------------------------------------------
    def intern_constant(self, value: np.ndarray) -> str:
        name = f"__const_{next(self._const_counter)}"
        self.constants[name] = value
        return name

    def hoistable_for(self, fname: str) -> Set[int]:
        return self._hoistable.get(fname, set())


class _Scope:
    """Per-function name allocation and variable environment."""

    def __init__(self) -> None:
        self.env: Dict[int, str] = {}
        self.used: Set[str] = set()
        self._counter = itertools.count()

    def fresh(self, hint: str) -> str:
        base = "".join(c if (c.isalnum() or c == "_") else "_" for c in hint) or "v"
        if base[0].isdigit():
            base = "v" + base
        name = base
        while name in self.used or name in ("__depth", "__phase"):
            name = f"{base}_{next(self._counter)}"
        self.used.add(name)
        return name

    def bind(self, var: Var) -> str:
        name = self.fresh(var.name_hint or "v")
        self.env[id(var)] = name
        return name

    def lookup(self, var: Var) -> str:
        try:
            return self.env[id(var)]
        except KeyError:
            raise KeyError(f"codegen: unbound variable {var!r}") from None


class _FunctionEmitter:
    """Emits the Python definition of one IR function."""

    def __init__(self, cg: PythonCodegen, fname: str, func: Function) -> None:
        self.cg = cg
        self.fname = fname
        self.func = func
        self.scope = _Scope()
        self.lines: List[str] = []
        self.level = 1
        # ghost-op bookkeeping: dynamic-depth invocations emitted so far and
        # whether an unknown-depth construct (call/recursion) was emitted
        self.dyn_invokes = 0
        self.unknown_delta = False
        self.cur_phase = 0
        self.is_main = fname == "main"

    # -- emission helpers -------------------------------------------------------
    def emit(self, line: str) -> None:
        self.lines.append("    " * self.level + line)

    def fresh(self, hint: str) -> str:
        return self.scope.fresh(hint)

    # -- top level ----------------------------------------------------------------
    def generate(self) -> str:
        params = [self.scope.bind(p) for p in self.func.params]
        header = f"def {py_func_name(self.fname)}({', '.join(params + ['__depth', '__phase'])}):"
        if self.cg.tdc:
            self.emit("if False: yield  # ensure generator")
        result = self.compile_chain(self.func.body, top_level=self.is_main)
        self.emit(f"return {result}")
        return header + "\n" + "\n".join(self.lines)

    # -- let chains / static block runs ---------------------------------------------
    def _classify(self, value: Expr) -> str:
        if isinstance(value, Call) and isinstance(value.op, OpRef) and has_op(value.op.name):
            if get_op(value.op.name).kind == "tensor":
                return "op"
        return "other"

    def _binding_phase(self, value: Expr) -> int:
        return self.cg.phases.phase_of(value, self.cur_phase)

    def compile_chain(self, expr: Expr, top_level: bool = False) -> str:
        run: List[Tuple[Optional[Var], Call]] = []
        run_hoisted = False
        options = self.cg.options
        hoistable = self.cg.hoistable_for(self.fname)

        def flush(rest: Expr) -> None:
            nonlocal run, run_hoisted
            if not run:
                return
            rest_free = {id(v) for v in free_vars(rest)}
            escaping = [v for v, _ in run if v is not None and id(v) in rest_free]
            self._emit_block(run, escaping, run_hoisted)
            run = []
            run_hoisted = False

        cur: Expr = expr
        while isinstance(cur, Let):
            var, value = cur.var, cur.value

            if top_level and options.program_phases and self.is_main:
                phase = self._binding_phase(value)
                if phase != self.cur_phase:
                    flush(cur)
                    self.emit(f"__phase = {phase}")
                    # phases are drained in order, so the depth counter can
                    # restart: operators of a new semantic stage batch together
                    # across instances regardless of how deep the previous
                    # stage recursed (§A.3)
                    self.emit("__depth[0] = 0")
                    self.cur_phase = phase

            kind = self._classify(value)
            if kind == "op":
                hoisted = options.hoisting and id(value) in hoistable
                if run and (run_hoisted != hoisted or not options.grain_size_coarsening):
                    flush(cur)
                run.append((var, value))
                run_hoisted = hoisted
                if not options.grain_size_coarsening:
                    flush(cur.body)
                cur = cur.body
                continue

            flush(cur)

            group_id = value.attrs.get("concurrent_group") if isinstance(value, Call) else None
            if group_id is not None:
                cur = self._emit_concurrent_group(cur, group_id)
                continue

            value_str = self.compile_expr(value)
            name = self.scope.bind(var)
            self.emit(f"{name} = {value_str}")
            cur = cur.body

        if top_level and options.program_phases and self.is_main:
            phase = self.cg.phases.result_phase
            if phase != self.cur_phase:
                flush(cur)
                self.emit(f"__phase = {phase}")
                self.cur_phase = phase
        flush(cur)
        return self.compile_expr(cur)

    def _emit_block(
        self,
        bindings: List[Tuple[Optional[Var], Call]],
        escaping: List[Var],
        hoisted: bool,
    ) -> List[str]:
        result = self.cg.block_builder.build(
            bindings, escaping, name=self.fname, hoisted=hoisted
        )
        arg_strs = [self.compile_expr(e) for e in result.input_exprs]
        depth_expr = "0" if hoisted else "__depth[0]"
        if result.output_vars:
            out_names = [self.scope.bind(v) for v in result.output_vars]
        else:
            out_names = [self.fresh("blk")]
        lhs = ", ".join(out_names)
        self.emit(
            f"{lhs} = __rt.invoke({result.block.block_id}, {depth_expr}, __phase, "
            f"[{', '.join(arg_strs)}])"
        )
        if not hoisted:
            self.emit("__depth[0] += 1")
            self.dyn_invokes += 1
        return out_names

    # -- concurrent fork-join ----------------------------------------------------
    def _emit_concurrent_group(self, cur: Let, group_id: Any) -> Expr:
        """Emit all consecutive bindings belonging to one concurrent group and
        return the remaining let-chain."""
        members: List[Tuple[Var, Call]] = []
        node: Expr = cur
        while (
            isinstance(node, Let)
            and isinstance(node.value, Call)
            and node.value.attrs.get("concurrent_group") == group_id
        ):
            members.append((node.var, node.value))
            node = node.body

        opts = self.cg.options
        d0 = self.fresh("cc_d0")
        self.emit(f"{d0} = __depth[0]")
        self.unknown_delta = True

        use_fibers = self.cg.tdc and opts.concurrent_fibers
        if use_fibers:
            handle_names: List[str] = []
            depth_names: List[str] = []
            for var, call in members:
                di = self.fresh("cc_dep")
                self.emit(f"{di} = [{d0}]")
                depth_names.append(di)
                callee_str = self._compile_callee_for_spawn(call, di)
                hi = self.fresh("cc_h")
                self.emit(f"{hi} = __fibers.spawn({callee_str})")
                handle_names.append(hi)
            joined = self.fresh("cc_res")
            self.emit(f"{joined} = yield ('join', [{', '.join(handle_names)}])")
            for i, (var, _) in enumerate(members):
                name = self.scope.bind(var)
                self.emit(f"{name} = {joined}[{i}]")
            depth_reads = ", ".join(f"{d}[0]" for d in depth_names)
            self.emit(f"__depth[0] = max({d0}, {depth_reads})")
        else:
            maxv = self.fresh("cc_max")
            self.emit(f"{maxv} = {d0}")
            for var, call in members:
                self.emit(f"__depth[0] = {d0}")
                value_str = self.compile_expr(call)
                name = self.scope.bind(var)
                self.emit(f"{name} = {value_str}")
                self.emit(f"{maxv} = max({maxv}, __depth[0])")
            self.emit(f"__depth[0] = {maxv}")
        return node

    def _compile_callee_for_spawn(self, call: Call, depth_name: str) -> str:
        """Compile a concurrent call so it can be spawned as its own fiber:
        the callee receives a private depth cell."""
        if not isinstance(call.op, GlobalVar):
            raise NotImplementedError(
                "concurrent calls must target global functions to be spawned as fibers"
            )
        args = [self.compile_expr(a) for a in call.args]
        return f"{py_func_name(call.op.name)}({', '.join(args + [depth_name, '__phase'])})"

    # -- expressions ---------------------------------------------------------------
    def compile_expr(self, expr: Expr) -> str:
        if isinstance(expr, Var):
            return self.scope.lookup(expr)
        if isinstance(expr, Constant):
            value = expr.value
            if isinstance(value, np.ndarray):
                return self.cg.intern_constant(value)
            if isinstance(value, bool):
                return "True" if value else "False"
            return repr(value)
        if isinstance(expr, GlobalVar):
            # function reference used as a value (e.g. passed to map)
            if expr.name in ("map", "foldl", "reverse", "rev_append"):
                raise NotImplementedError("prelude functions cannot be used as values")
            fname = py_func_name(expr.name)
            return f"(lambda *__a: {fname}(*__a, __depth, __phase))"
        if isinstance(expr, TupleExpr):
            inner = ", ".join(self.compile_expr(f) for f in expr.fields)
            trailing = "," if len(expr.fields) == 1 else ""
            return f"({inner}{trailing})"
        if isinstance(expr, TupleGetItem):
            return f"{self.compile_expr(expr.tup)}[{expr.index}]"
        if isinstance(expr, Function):
            return self._compile_closure(expr)
        if isinstance(expr, If):
            return self._compile_if(expr)
        if isinstance(expr, Match):
            return self._compile_match(expr)
        if isinstance(expr, Let):
            return self.compile_chain(expr)
        if isinstance(expr, Call):
            return self._compile_call(expr)
        raise TypeError(f"codegen: cannot compile {type(expr).__name__}")

    # -- calls -----------------------------------------------------------------------
    def _compile_call(self, call: Call) -> str:
        op = call.op
        if isinstance(op, OpRef):
            opdef = get_op(op.name)
            if opdef.kind == "host":
                args = [self.compile_expr(a) for a in call.args]
                return _SCALAR_FMT[op.name].format(*args)
            if opdef.kind == "sync":
                arg = self.compile_expr(call.args[0])
                index = int(call.attrs.get("index", 0))
                if self.cg.tdc:
                    self.emit("yield")
                else:
                    self.emit("__rt.trigger()")
                reader = "item_int" if op.name == "item_int" else "item"
                return f"__rt.{reader}({arg}, {index})"
            # tensor operator appearing as a plain expression: its own block
            hoisted = self.cg.options.hoisting and id(call) in self.cg.hoistable_for(self.fname)
            names = self._emit_block([(None, call)], [], hoisted)
            return names[0]
        if isinstance(op, ConstructorRef):
            args = ", ".join(self.compile_expr(a) for a in call.args)
            return f"ADTValue(__ctor_{op.constructor.name}, [{args}])"
        if isinstance(op, GlobalVar):
            return self._compile_global_call(op.name, call)
        if isinstance(op, Var):
            fn = self.scope.lookup(op)
            args = ", ".join(self.compile_expr(a) for a in call.args)
            self.unknown_delta = True
            call_str = f"{fn}({args})"
            return f"(yield from {call_str})" if self.cg.tdc else call_str
        if isinstance(op, Function):
            fn = self._compile_closure(op)
            args = ", ".join(self.compile_expr(a) for a in call.args)
            self.unknown_delta = True
            call_str = f"{fn}({args})"
            return f"(yield from {call_str})" if self.cg.tdc else call_str
        raise TypeError(f"codegen: cannot call {type(op).__name__}")

    def _compile_global_call(self, name: str, call: Call) -> str:
        args = [self.compile_expr(a) for a in call.args]
        self.unknown_delta = True
        if name == "map":
            inner = f"__map_parallel({args[0]}, {args[1]}, __depth)"
            return f"(yield from {inner})" if self.cg.tdc else inner
        if name == "foldl":
            inner = f"__foldl({args[0]}, {args[1]}, {args[2]}, __depth)"
            return f"(yield from {inner})" if self.cg.tdc else inner
        if name in ("reverse", "rev_append"):
            if name == "reverse":
                return f"__reverse({args[0]})"
            return f"__reverse({args[0]})"  # rev_append is only used via reverse
        call_str = f"{py_func_name(name)}({', '.join(args + ['__depth', '__phase'])})"
        return f"(yield from {call_str})" if self.cg.tdc else call_str

    # -- closures ---------------------------------------------------------------------
    def _compile_closure(self, func: Function) -> str:
        name = self.fresh("lam")
        params = [self.scope.bind(p) for p in func.params]
        self.emit(f"def {name}({', '.join(params)}):")
        self.level += 1
        if self.cg.tdc:
            self.emit("if False: yield  # ensure generator")
        saved_unknown, saved_invokes = self.unknown_delta, self.dyn_invokes
        result = self.compile_chain(func.body)
        self.emit(f"return {result}")
        self.level -= 1
        # invocations inside the closure body execute at its call sites, not here
        self.unknown_delta, self.dyn_invokes = saved_unknown, saved_invokes
        return name

    # -- conditionals --------------------------------------------------------------------
    def _compile_if(self, expr: If) -> str:
        cond = self.compile_expr(expr.cond)
        out = self.fresh("ifval")
        entry_depth = None
        if self.cg.options.ghost_ops:
            entry_depth = self.fresh("gd")
            self.emit(f"{entry_depth} = __depth[0]")

        saved_invokes, saved_unknown = self.dyn_invokes, self.unknown_delta

        self.emit(f"if {cond}:")
        self.level += 1
        self.dyn_invokes, self.unknown_delta = 0, False
        then_ret = self.compile_chain(expr.then_branch)
        self.emit(f"{out} = {then_ret}")
        then_delta, then_unknown = self.dyn_invokes, self.unknown_delta
        self.level -= 1

        self.emit("else:")
        self.level += 1
        self.dyn_invokes, self.unknown_delta = 0, False
        else_ret = self.compile_chain(expr.else_branch)
        self.emit(f"{out} = {else_ret}")
        else_delta, else_unknown = self.dyn_invokes, self.unknown_delta
        self.level -= 1

        branch_unknown = then_unknown or else_unknown
        if (
            self.cg.options.ghost_ops
            and entry_depth is not None
            and not branch_unknown
            and (then_delta != else_delta)
        ):
            # ghost operators: align the depth counter so post-branch operators
            # batch across instances that took different branches (Fig. 3)
            self.emit(f"__depth[0] = {entry_depth} + {max(then_delta, else_delta)}")

        self.dyn_invokes = saved_invokes + max(then_delta, else_delta)
        self.unknown_delta = saved_unknown or branch_unknown
        return out

    # -- pattern matching -----------------------------------------------------------------
    def _compile_match(self, expr: Match) -> str:
        data = self.compile_expr(expr.data)
        scrut = self.fresh("scrut")
        self.emit(f"{scrut} = {data}")
        out = self.fresh("mval")

        entry_depth = None
        if self.cg.options.ghost_ops:
            entry_depth = self.fresh("gd")
            self.emit(f"{entry_depth} = __depth[0]")

        saved_invokes, saved_unknown = self.dyn_invokes, self.unknown_delta
        deltas: List[int] = []
        unknowns: List[bool] = []

        for i, clause in enumerate(expr.clauses):
            pattern = clause.pattern
            if isinstance(pattern, PatternConstructor):
                cond = f"{scrut}.constructor.tag == {pattern.constructor.tag}"
            elif isinstance(pattern, (PatternVar, PatternWildcard)):
                cond = "True"
            else:
                raise NotImplementedError(f"unsupported match pattern {pattern!r}")
            kw = "if" if i == 0 else "elif"
            self.emit(f"{kw} {cond}:")
            self.level += 1
            self._bind_pattern(pattern, scrut)
            self.dyn_invokes, self.unknown_delta = 0, False
            ret = self.compile_chain(clause.body)
            self.emit(f"{out} = {ret}")
            deltas.append(self.dyn_invokes)
            unknowns.append(self.unknown_delta)
            self.level -= 1

        self.emit("else:")
        self.level += 1
        self.emit(f"raise RuntimeError('match failure in {self.fname}')")
        self.level -= 1

        branch_unknown = any(unknowns)
        if (
            self.cg.options.ghost_ops
            and entry_depth is not None
            and not branch_unknown
            and len(set(deltas)) > 1
        ):
            self.emit(f"__depth[0] = {entry_depth} + {max(deltas)}")

        self.dyn_invokes = saved_invokes + (max(deltas) if deltas else 0)
        self.unknown_delta = saved_unknown or branch_unknown
        return out

    def _bind_pattern(self, pattern, scrut: str) -> None:
        if isinstance(pattern, PatternWildcard):
            return
        if isinstance(pattern, PatternVar):
            name = self.scope.bind(pattern.var)
            self.emit(f"{name} = {scrut}")
            return
        if isinstance(pattern, PatternConstructor):
            for k, sub in enumerate(pattern.patterns):
                if isinstance(sub, PatternWildcard):
                    continue
                if isinstance(sub, PatternVar):
                    name = self.scope.bind(sub.var)
                    self.emit(f"{name} = {scrut}.fields[{k}]")
                else:
                    raise NotImplementedError("nested constructor patterns are not supported")
            return
        raise NotImplementedError(f"unsupported pattern {pattern!r}")
