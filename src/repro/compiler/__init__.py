"""ACROBAT's ahead-of-time compiler."""

from .codegen import GeneratedProgram, PythonCodegen, py_func_name
from .driver import CompiledModel, compile_module
from .options import CompilerOptions

__all__ = [
    "CompilerOptions",
    "CompiledModel",
    "compile_module",
    "PythonCodegen",
    "GeneratedProgram",
    "py_func_name",
]
