"""Runtime intrinsics injected into the generated program's namespace.

The prelude's higher-order functions (``map``, ``foldl``, ``reverse``) are
special-cased by the code generator (§4.1: every application of the mapped
closure gets the *same* depth, making the whole ``map`` batchable).  Rather
than compiling their IR definitions, the generated code calls these
hand-written helpers, in a plain variant (straight-line programs) and a
generator variant (programs with tensor-dependent control flow, where the
mapped closure may contain synchronization points).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..ir.adt import ADTValue, Constructor


def _to_list(cons_name: str, xs: ADTValue) -> List[Any]:
    items: List[Any] = []
    node = xs
    while node.constructor.name == cons_name:
        items.append(node.fields[0])
        node = node.fields[1]
    return items


def _from_list(nil: Constructor, cons: Constructor, items: List[Any]) -> ADTValue:
    out = ADTValue(nil, [])
    for item in reversed(items):
        out = ADTValue(cons, [item, out])
    return out


def make_intrinsics(nil: Constructor, cons: Constructor, tdc: bool) -> Dict[str, Callable]:
    """Build the intrinsic-helper namespace for generated code.

    Parameters
    ----------
    nil, cons:
        The module's ``List`` constructors.
    tdc:
        Whether the program uses tensor-dependent control flow, i.e. whether
        generated functions (and the closures passed to ``map``/``foldl``)
        are generator coroutines.
    """

    def reverse_list(xs: ADTValue) -> ADTValue:
        return _from_list(nil, cons, list(reversed(_to_list(cons.name, xs))))

    if not tdc:

        def map_parallel(f: Callable, xs: ADTValue, depth: List[int]) -> ADTValue:
            """Apply ``f`` to every element at the *same* scheduling depth."""
            items = _to_list(cons.name, xs)
            d0 = depth[0]
            max_d = d0
            results = []
            for item in items:
                depth[0] = d0
                results.append(f(item))
                max_d = max(max_d, depth[0])
            depth[0] = max_d
            return _from_list(nil, cons, results)

        def foldl(f: Callable, init: Any, xs: ADTValue, depth: List[int]) -> Any:
            acc = init
            for item in _to_list(cons.name, xs):
                acc = f(acc, item)
            return acc

        return {
            "__map_parallel": map_parallel,
            "__foldl": foldl,
            "__reverse": reverse_list,
        }

    def map_parallel_gen(f: Callable, xs: ADTValue, depth: List[int]):
        items = _to_list(cons.name, xs)
        d0 = depth[0]
        max_d = d0
        results = []
        for item in items:
            depth[0] = d0
            results.append((yield from f(item)))
            max_d = max(max_d, depth[0])
        depth[0] = max_d
        return _from_list(nil, cons, results)

    def foldl_gen(f: Callable, init: Any, xs: ADTValue, depth: List[int]):
        acc = init
        for item in _to_list(cons.name, xs):
            acc = yield from f(acc, item)
        return acc

    return {
        "__map_parallel": map_parallel_gen,
        "__foldl": foldl_gen,
        "__reverse": reverse_list,
    }
