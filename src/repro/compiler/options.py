"""Compiler options.

Each flag corresponds to one of the optimizations evaluated in the paper;
:meth:`CompilerOptions.ablation_levels` reproduces the six cumulative
configurations of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple


@dataclass
class CompilerOptions:
    """Switches for ACROBAT's hybrid static+dynamic optimizations."""

    #: ahead-of-time compilation to native (Python) code; when False the
    #: program is interpreted by the Relay-VM-style interpreter (§6, Table 4)
    aot: bool = True
    #: standard producer-consumer kernel fusion (§7.4)
    kernel_fusion: bool = True
    #: horizontal fusion of same-operator calls sharing an argument (§B.1)
    horizontal_fusion: bool = True
    #: schedule at static-block granularity instead of per-operator (§A.2)
    grain_size_coarsening: bool = True
    #: compute DFG-node depths inline in the generated code (§4.1); when off
    #: the runtime recomputes depths by traversing the DFG
    inline_depth: bool = True
    #: statically hoist operators out of recursion (depth 0, §A.1)
    hoisting: bool = True
    #: split main into program phases and drain them in order (§4.1, §A.3)
    program_phases: bool = True
    #: insert ghost operators to align depths across conditional branches
    ghost_ops: bool = True
    #: fuse memory gathers into batched kernels (§5.2)
    gather_fusion: bool = True
    #: duplicate functions called with different parameter bindings (§B.1)
    specialization: bool = True
    #: exploit instance parallelism under tensor-dependent control flow by
    #: spawning concurrent fibers (§4.2); requires inline_depth
    concurrent_fibers: bool = True
    #: coalesce host->device transfers
    batch_memcpy: bool = True
    #: cache memory plans across structurally identical execution rounds
    #: (cuts the ``memory_planning`` bucket on repeated session flushes)
    plan_cache: bool = True
    #: shape-keyed kernel specialization below the plan cache: recurring
    #: ``(block, batch_size, operand-layout, device)`` fingerprints promote
    #: to frozen dispatch paths under steady-state serving (cuts the
    #: ``dispatch`` bucket; see :mod:`repro.specialize`).  Distinct from
    #: ``specialization``, which is the compiler's *function duplication*
    #: pass (§B.1); this knob is a runtime JIT tier.
    kernel_specialization: bool = True
    #: enable extra runtime consistency checks (tests)
    validate: bool = False
    #: scheduler-policy name from the engine registry
    #: (:mod:`repro.engine.registry`); None derives the policy from
    #: ``inline_depth`` ("inline_depth" when set, else "dynamic_depth")
    scheduler: Optional[str] = None
    #: default auto-scheduler quality assumed for kernels that were not
    #: explicitly auto-scheduled (see kernels.autoscheduler)
    default_schedule_quality: float = 0.9

    def effective(self) -> "CompilerOptions":
        """Resolve inter-flag dependencies (fibers need inline depth)."""
        out = replace(self)
        if not out.inline_depth:
            out.concurrent_fibers = False
            out.hoisting = False
        if not out.kernel_fusion:
            out.horizontal_fusion = False
        return out

    # -- presets ---------------------------------------------------------------
    @classmethod
    def all_off(cls) -> "CompilerOptions":
        """Baseline configuration with every optimization disabled (still AOT)."""
        return cls(
            kernel_fusion=False,
            horizontal_fusion=False,
            grain_size_coarsening=False,
            inline_depth=False,
            hoisting=False,
            program_phases=False,
            ghost_ops=False,
            gather_fusion=False,
            specialization=True,  # required for correctness of shared args
            concurrent_fibers=False,
        )

    @classmethod
    def ablation_levels(cls) -> List[Tuple[str, "CompilerOptions"]]:
        """The six cumulative optimization levels of Fig. 6."""
        levels: List[Tuple[str, CompilerOptions]] = []
        opts = cls.all_off()
        levels.append(("No kernel fusion", opts))
        opts = replace(opts, kernel_fusion=True, horizontal_fusion=True)
        levels.append(("+Std. kernel fusion", opts))
        opts = replace(opts, grain_size_coarsening=True)
        levels.append(("+Grain size coarsening", opts))
        opts = replace(opts, inline_depth=True, hoisting=True, concurrent_fibers=True)
        levels.append(("+Inline depth computation", opts))
        opts = replace(opts, program_phases=True, ghost_ops=True)
        levels.append(("+Program phases/Ghost ops", opts))
        opts = replace(opts, gather_fusion=True)
        levels.append(("+Gather op fusion", opts))
        return levels
