"""Static-block construction during compilation.

The code generator walks each function's ``let`` chain; maximal runs of
tensor-operator bindings (plus any operator calls nested inside their
argument expressions) become one :class:`~repro.kernels.block.StaticBlock`
when grain-size coarsening is enabled, or one block per operator otherwise.
This module builds the block object, decides which external values flow in
(and whether they are shared, using the taint analysis) and which bound
variables escape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.taint import TaintResult
from ..ir.expr import Call, Constant, Expr, OpRef, Var
from ..kernels.block import BlockInput, BlockOp, StaticBlock, const_ref, input_ref, op_ref
from ..kernels.registry import get_op


@dataclass
class BlockBuildResult:
    """A built block plus how it connects to the surrounding generated code."""

    block: StaticBlock
    #: expressions (usually :class:`Var`) to evaluate in the generated code and
    #: pass as the block's runtime arguments, in input order
    input_exprs: List[Expr]
    #: bound variables whose values escape the block (same order as outputs)
    output_vars: List[Var]
    #: True when every operator in the block was classified hoistable
    hoisted: bool = False


class BlockBuilder:
    """Builds :class:`StaticBlock` objects and assigns global block ids."""

    def __init__(self, taint: TaintResult) -> None:
        self.taint = taint
        self.blocks: List[StaticBlock] = []

    def _next_id(self) -> int:
        return len(self.blocks)

    def build(
        self,
        bindings: Sequence[Tuple[Optional[Var], Call]],
        escaping_vars: Sequence[Var],
        name: str,
        hoisted: bool = False,
    ) -> BlockBuildResult:
        """Build a block from a run of op bindings.

        ``bindings`` maps bound variables (possibly ``None`` for an anonymous
        trailing expression) to tensor-op calls whose argument expressions may
        contain further nested tensor-op calls (which are flattened into the
        block).  ``escaping_vars`` are the bound variables used after the run.
        """
        ops: List[BlockOp] = []
        inputs: List[BlockInput] = []
        input_exprs: List[Expr] = []
        input_index_of: Dict[int, int] = {}  # id(expr) -> input index
        op_index_of_var: Dict[int, int] = {}  # id(Var) -> producing op index

        def external_input(expr: Expr) -> Tuple[str, int]:
            key = id(expr)
            if key in input_index_of:
                return input_ref(input_index_of[key])
            idx = len(inputs)
            shared = self.taint.is_invariant(expr)
            label = expr.name_hint if isinstance(expr, Var) else f"in{idx}"
            inputs.append(BlockInput(idx, label, shared=shared))
            input_exprs.append(expr)
            input_index_of[key] = idx
            return input_ref(idx)

        def add_expr(expr: Expr) -> Tuple[str, int]:
            """Return an ArgRef for ``expr``, flattening nested op calls."""
            if isinstance(expr, Var):
                if id(expr) in op_index_of_var:
                    return op_ref(op_index_of_var[id(expr)])
                return external_input(expr)
            if isinstance(expr, Constant):
                value = expr.value
                if isinstance(value, np.ndarray):
                    return const_ref(value)
                return const_ref(np.asarray(value, dtype=np.float32))
            if isinstance(expr, Call) and isinstance(expr.op, OpRef):
                opdef = get_op(expr.op.name)
                if opdef.kind == "tensor":
                    return add_op(expr)
            # anything else is evaluated outside the block and passed in
            return external_input(expr)

        def add_op(call: Call) -> Tuple[str, int]:
            arg_refs = [add_expr(a) for a in call.args]
            idx = len(ops)
            ops.append(BlockOp(idx, call.op.name, arg_refs, dict(call.attrs)))
            return op_ref(idx)

        for var, call in bindings:
            ref = add_op(call)
            if var is not None:
                op_index_of_var[id(var)] = ref[1]

        output_vars = [v for v in escaping_vars if id(v) in op_index_of_var]
        outputs = [op_ref(op_index_of_var[id(v)]) for v in output_vars]
        if not outputs:
            # the last op's value is the block result (anonymous expression)
            outputs = [op_ref(len(ops) - 1)]
            output_vars = []

        block = StaticBlock(
            block_id=self._next_id(),
            name=f"{name}_b{self._next_id()}",
            inputs=inputs,
            ops=ops,
            outputs=outputs,
        )
        block.validate()
        self.blocks.append(block)
        return BlockBuildResult(
            block=block,
            input_exprs=input_exprs,
            output_vars=output_vars,
            hoisted=hoisted,
        )
